#include "srv/service.h"

#include <algorithm>
#include <utility>

#include "esql/parser.h"
#include "esql/translator.h"
#include "exec/executor.h"
#include "lera/schema.h"
#include "rules/optimizer.h"
#include "srv/fingerprint.h"

namespace eds::srv {

gov::GovernorLimits DeriveLimits(const gov::GovernorLimits& base,
                                 size_t queue_depth, size_t queue_capacity,
                                 bool load_adaptive) {
  gov::GovernorLimits derived = base;
  derived.cancel = nullptr;  // cancellation is wired per-Submit
  if (!load_adaptive || queue_capacity == 0) return derived;
  const double load =
      std::min(1.0, static_cast<double>(queue_depth) /
                        static_cast<double>(queue_capacity));
  const double scale = 1.0 - 0.75 * load;  // full budget idle, 25% saturated
  auto scaled = [scale](uint64_t v) -> uint64_t {
    if (v == 0) return 0;  // unlimited stays unlimited
    return std::max<uint64_t>(1, static_cast<uint64_t>(v * scale));
  };
  derived.deadline_ms = scaled(base.deadline_ms);
  derived.max_term_nodes = scaled(base.max_term_nodes);
  // max_rows deliberately unscaled; see header.
  return derived;
}

QueryService::QueryService(exec::Session* session,
                           const ServiceOptions& options)
    : session_(session),
      options_(options),
      cache_(options.cache),
      l0_(options.use_l0 ? options.l0_capacity : 0) {}

QueryService::~QueryService() { Stop(); }

Status QueryService::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::RuntimeError("service already started");
    started_ = true;
    stopping_ = false;
  }
  // The one lazy mutation on the query path: build the optimizer now so
  // workers only ever read it.
  EDS_RETURN_IF_ERROR(session_->optimizer().status());
  sinks_.clear();
  for (size_t i = 0; i < options_.workers; ++i) {
    sinks_.push_back(options_.collect_traces
                         ? std::make_unique<obs::TraceSink>()
                         : nullptr);
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void QueryService::Stop() {
  std::deque<Item> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    orphaned.swap(queue_);
    cv_.notify_all();
  }
  for (Item& item : orphaned) {
    item.promise.set_value(
        Status::RuntimeError("query service stopping"));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

std::future<Result<ServedQuery>> QueryService::Submit(
    std::string esql, const gov::CancelToken* cancel) {
  std::promise<Result<ServedQuery>> promise;
  std::future<Result<ServedQuery>> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (!started_ || stopping_) {
      promise.set_value(
          Status::RuntimeError("query service is not accepting work"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      ++stats_.rejected;
      promise.set_value(Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) +
          " queued): load shed"));
      return future;
    }
    Item item;
    item.esql = std::move(esql);
    item.cancel = cancel;
    item.promise = std::move(promise);
    item.enqueue_ns = obs::NowNs();
    item.granted = DeriveLimits(options_.base_limits, queue_.size(),
                                options_.queue_capacity,
                                options_.load_adaptive);
    item.granted.cancel = cancel;
    queue_.push_back(std::move(item));
    ++stats_.admitted;
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
  }
  cv_.notify_one();
  return future;
}

void QueryService::WorkerLoop(size_t worker_id) {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeItem(std::move(item), worker_id);
  }
}

bool QueryService::ServeQueuedForTesting() {
  Item item;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  ServeItem(std::move(item), 0);
  return true;
}

void QueryService::ServeItem(Item item, size_t worker_id) {
  const uint64_t dequeue_ns = obs::NowNs();
  obs::TraceSink* sink =
      worker_id < sinks_.size() ? sinks_[worker_id].get() : nullptr;
  Result<ServedQuery> served =
      ServeNow(item.esql, item.granted, item.cancel, sink, worker_id);
  if (served.ok()) {
    served->queue_ns = dequeue_ns - item.enqueue_ns;
    served->serve_ns = obs::NowNs() - dequeue_ns;
    served->granted = item.granted;
    served->worker_id = worker_id;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (served.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  item.promise.set_value(std::move(served));
}

Result<ServedQuery> QueryService::ServeNow(const std::string& esql,
                                           const gov::GovernorLimits& granted,
                                           const gov::CancelToken* cancel,
                                           obs::TraceSink* sink,
                                           size_t worker_id) {
  ServedQuery served;
  exec::QueryResult& result = served.result;
  const uint64_t q0 = obs::NowNs();
  obs::Span query_span(sink, "srv.query", "session");
  if (sink != nullptr) {
    query_span.Arg("esql", std::string(esql.substr(0, 120)));
    query_span.Arg("worker", static_cast<int64_t>(worker_id));
  }

  // Fail fast on work that was cancelled while it sat in the queue.
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::ResourceExhausted(
        "query governor: cancelled: cancelled while queued");
  }

  // Level 0: exact-text lookup before the parser runs. A hit replays the
  // fully instantiated plan and its columns — parse, translate, rewrite
  // and schema inference are all skipped (their phase times stay 0) and
  // the query goes straight to governed execution.
  std::string l0_key;
  if (options_.use_l0) {
    l0_key = NormalizeQueryText(esql);
    std::optional<L0Cache::Entry> hit = l0_.Lookup(
        l0_key, session_->catalog().epoch(), session_->rules_epoch());
    if (hit.has_value()) {
      obs::Span l0_span(sink, "srv.l0.replay", "srv");
      served.l0_hit = true;
      result.raw_plan = hit->raw_plan;
      result.optimized_plan = hit->plan;
      result.columns = hit->columns;
      gov::QueryGuard guard;
      if (granted.any()) guard.Arm(granted);
      exec::ExecOptions exec_options = options_.exec_options;
      exec_options.trace_sink = sink;
      if (granted.any() && exec_options.guard == nullptr) {
        exec_options.guard = &guard;
      }
      uint64_t e0 = obs::NowNs();
      {
        obs::Span span(sink, "phase.execute", "phase");
        exec::Executor executor(&session_->catalog(), &session_->db(),
                                exec_options);
        Result<exec::Rows> rows = executor.Execute(hit->plan);
        result.exec_stats = executor.stats();
        if (!rows.ok()) return rows.status();
        result.rows = *std::move(rows);
      }
      uint64_t end = obs::NowNs();
      result.phase_times.exec_ns = end - e0;
      result.phase_times.total_ns = end - q0;
      return served;
    }
  }

  // Parse + translate. The session's TranslateTimed is bypassed so no
  // worker ever touches the session-level trace sink.
  uint64_t t0 = obs::NowNs();
  esql::Statement stmt;
  {
    obs::Span span(sink, "phase.parse", "phase");
    EDS_ASSIGN_OR_RETURN(stmt, esql::ParseStatement(esql));
  }
  uint64_t t1 = obs::NowNs();
  result.phase_times.parse_ns = t1 - t0;
  if (stmt.kind != esql::StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  term::TermRef raw;
  {
    obs::Span span(sink, "phase.translate", "phase");
    esql::Translator translator(&session_->catalog());
    EDS_ASSIGN_OR_RETURN(raw, translator.TranslateQuery(*stmt.select));
  }
  result.phase_times.translate_ns = obs::NowNs() - t1;
  result.raw_plan = raw;

  gov::QueryGuard guard;
  const bool governed = granted.any();
  if (governed) guard.Arm(granted);

  EDS_ASSIGN_OR_RETURN(rules::Optimizer * optimizer, session_->optimizer());

  term::TermRef plan = raw;
  uint64_t rw0 = obs::NowNs();
  if (options_.rewrite && options_.use_cache) {
    // Cached path: fingerprint, then hit->replay / miss->rewrite+insert.
    Fingerprint fp;
    {
      obs::Span span(sink, "srv.fingerprint", "srv");
      fp = FingerprintPlan(raw);
    }
    PlanCache::Key key{fp.tmpl, session_->catalog().epoch(),
                       session_->rules_epoch()};
    std::optional<term::TermRef> cached = cache_.Lookup(key);
    if (cached.has_value()) {
      obs::Span span(sink, "srv.cache.replay", "srv");
      Result<term::TermRef> replayed = InstantiatePlan(*cached, fp.params);
      if (replayed.ok()) {
        plan = *replayed;
        served.cache_hit = true;
        // rewrite_ns stays 0: the rewrite phase never ran.
      }
      // A malformed entry falls through to the miss path below.
    }
    if (!served.cache_hit) {
      rewrite::RewriteOptions rw = options_.rewrite_options;
      rw.trace_sink = sink;
      if (governed && rw.guard == nullptr) rw.guard = &guard;
      obs::Span span(sink, "phase.rewrite", "phase");
      // Rewrite the *template*: parameter variables are opaque to every
      // value-inspecting rule method, so the normal form is valid for any
      // literal instantiation (srv/fingerprint.h).
      EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                           optimizer->Rewrite(fp.tmpl, rw));
      result.rewrite_stats = outcome.stats;
      Result<term::TermRef> instantiated =
          InstantiatePlan(outcome.term, fp.params);
      if (!instantiated.ok()) {
        // A template normal form that cannot be re-instantiated (a rule
        // moved a parameter into a context substitution rejects) is
        // uncacheable: degrade to a plain rewrite of the raw plan.
        served.cache_bypass = true;
        EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome direct,
                             optimizer->Rewrite(raw, rw));
        result.rewrite_stats = direct.stats;
        plan = direct.term;
      } else {
        plan = *instantiated;
        // Degraded rewrites (governor trip / safety valve) are correct but
        // under-optimized — never cache them, so a future uncontended run
        // gets the chance to do better.
        if (!outcome.stats.trip.tripped() && !outcome.stats.safety_stop) {
          cache_.Insert(key, outcome.term);
          served.cache_stored = true;
        } else {
          served.cache_bypass = true;
        }
      }
    }
    result.phase_times.rewrite_ns =
        served.cache_hit ? 0 : obs::NowNs() - rw0;
  } else if (options_.rewrite) {
    rewrite::RewriteOptions rw = options_.rewrite_options;
    rw.trace_sink = sink;
    if (governed && rw.guard == nullptr) rw.guard = &guard;
    obs::Span span(sink, "phase.rewrite", "phase");
    EDS_ASSIGN_OR_RETURN(rewrite::RewriteOutcome outcome,
                         optimizer->Rewrite(raw, rw));
    result.rewrite_stats = outcome.stats;
    plan = outcome.term;
    served.cache_bypass = true;
    result.phase_times.rewrite_ns = obs::NowNs() - rw0;
  }
  if (result.rewrite_stats.safety_stop) {
    result.warnings.push_back(
        "rewrite stopped early: max_applications reached; results are "
        "correct but the plan may be under-optimized");
  }
  if (result.rewrite_stats.trip.tripped()) {
    result.rewrite_trip = result.rewrite_stats.trip;
    result.warnings.push_back(
        "rewrite degraded by query governor (" +
        result.rewrite_stats.trip.ToString() +
        "); best-so-far plan used, results are correct but the plan may "
        "be under-optimized");
  }
  result.optimized_plan = plan;

  // Mirror Session::Query's re-arm: a node-ceiling trip is a rewrite-phase
  // budget, not an execution death sentence.
  if (governed && guard.tripped() &&
      guard.trip().kind == gov::TripKind::kNodeCeiling) {
    gov::GovernorLimits rest = granted;
    rest.max_term_nodes = 0;
    if (rest.deadline_ms != 0) {
      uint64_t elapsed_ms = (obs::NowNs() - q0) / 1'000'000ULL;
      rest.deadline_ms = elapsed_ms < rest.deadline_ms
                             ? rest.deadline_ms - elapsed_ms
                             : 1;
    }
    guard.Arm(rest);
  }

  uint64_t s0 = obs::NowNs();
  {
    obs::Span span(sink, "phase.schema", "phase");
    EDS_ASSIGN_OR_RETURN(
        lera::Schema schema,
        lera::InferSchema(plan, session_->catalog(), nullptr, nullptr,
                          governed ? &guard : nullptr));
    for (const types::Field& f : schema) result.columns.push_back(f.name);
  }
  uint64_t e0 = obs::NowNs();
  result.phase_times.schema_ns = e0 - s0;

  // Populate L0 only with full-fidelity plans: a governor-degraded or
  // safety-stopped rewrite is correct but under-optimized, and an L0 hit
  // would replay it verbatim forever.
  if (options_.use_l0 && !result.rewrite_stats.trip.tripped() &&
      !result.rewrite_stats.safety_stop) {
    L0Cache::Entry entry;
    entry.raw_plan = raw;
    entry.plan = plan;
    entry.columns = result.columns;
    entry.catalog_epoch = session_->catalog().epoch();
    entry.rules_epoch = session_->rules_epoch();
    l0_.Insert(l0_key, std::move(entry));
  }

  exec::ExecOptions exec_options = options_.exec_options;
  exec_options.trace_sink = sink;
  if (governed && exec_options.guard == nullptr) exec_options.guard = &guard;
  {
    obs::Span span(sink, "phase.execute", "phase");
    exec::Executor executor(&session_->catalog(), &session_->db(),
                            exec_options);
    Result<exec::Rows> rows = executor.Execute(plan);
    result.exec_stats = executor.stats();
    if (!rows.ok()) return rows.status();
    result.rows = *std::move(rows);
  }
  uint64_t end = obs::NowNs();
  result.phase_times.exec_ns = end - e0;
  result.phase_times.total_ns = end - q0;
  return served;
}

ServiceStats QueryService::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<const obs::TraceSink*> QueryService::worker_sinks() const {
  std::vector<const obs::TraceSink*> out;
  out.reserve(sinks_.size());
  for (const auto& sink : sinks_) out.push_back(sink.get());
  return out;
}

void QueryService::WriteMergedTrace(std::ostream& os) const {
  std::vector<obs::SinkWithTid> sinks;
  for (size_t i = 0; i < sinks_.size(); ++i) {
    if (sinks_[i] != nullptr) {
      sinks.push_back({sinks_[i].get(), static_cast<int>(i) + 2});
    }
  }
  obs::WriteMergedChromeTrace(os, sinks);
}

void ExportCacheStats(const PlanCache::Stats& stats,
                      obs::MetricsRegistry* registry) {
  registry->Counter("cache.hits", stats.hits);
  registry->Counter("cache.misses", stats.misses);
  registry->Counter("cache.inserts", stats.inserts);
  registry->Counter("cache.evictions", stats.evictions);
  registry->Counter("cache.insert_failures", stats.insert_failures);
  registry->Counter("cache.invalidations", stats.invalidations);
  registry->Counter("cache.entries", stats.entries);
  registry->Counter("cache.nodes", stats.nodes);
}

void ExportServiceStats(const ServiceStats& stats,
                        obs::MetricsRegistry* registry) {
  registry->Counter("srv.submitted", stats.submitted);
  registry->Counter("srv.admitted", stats.admitted);
  registry->Counter("srv.rejected", stats.rejected);
  registry->Counter("srv.completed", stats.completed);
  registry->Counter("srv.failed", stats.failed);
  registry->Counter("srv.max_queue_depth", stats.max_queue_depth);
}

}  // namespace eds::srv
