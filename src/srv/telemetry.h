#ifndef EDS_SRV_TELEMETRY_H_
#define EDS_SRV_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "exec/session.h"
#include "gov/governor.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace eds::srv {

// Serving telemetry: the per-query workload record the ROADMAP's
// workload-driven items (rule tuning, per-tenant admission, rule
// discovery) all presuppose. Three pieces, owned by QueryService:
//
//   * latency histograms (obs/histogram.h) over queue wait, serve time,
//     and the pipeline phases, with serve time additionally split by
//     cache outcome — exported as srv.latency.* quantile gauges and as
//     Prometheus histogram series;
//   * a flight recorder: a bounded ring of structured QueryRecords for
//     the last N served queries, rendered by the shell's \top and \slow;
//   * a slow-query JSONL log: queries whose serve time crossed a
//     threshold are appended as one JSON object per line, with their own
//     Chrome span trace attached (captured retroactively — no re-run
//     under --trace-out needed).
//
// Everything here is off the serve path's critical section: histograms
// record via relaxed atomics, the recorder takes one short mutex per
// query, and with ServiceOptions::telemetry=false none of it is touched
// (one null-pointer branch, the PR-3 discipline).

// One served (or failed) query as the flight recorder keeps it.
struct QueryRecord {
  uint64_t seq = 0;           // 1-based admission-order id within the service
  std::string text;           // normalized query text, truncated
  uint64_t template_hash = 0; // structural hash of the fingerprint template
  exec::PhaseTimes phases;    // parse/translate/rewrite/schema/exec/total
  uint64_t queue_ns = 0;      // admission -> dequeue
  uint64_t serve_ns = 0;      // dequeue -> completion
  gov::GovernorLimits base;     // the service's configured budget template
  gov::GovernorLimits granted;  // load-scaled budget actually granted
  std::string trip;           // rewrite trip reason, "" when none
  bool l0_hit = false;
  bool cache_hit = false;     // template (plan-cache) hit
  bool cache_stored = false;
  bool cache_bypass = false;
  size_t worker_id = 0;
  bool ok = true;
  std::string error;          // status message when !ok
  uint64_t rows = 0;
  bool slow = false;          // crossed the slow-query threshold
  std::string trace_json;     // Chrome trace of this query (slow only)
};

// "l0", "tmpl", "miss", or "error" — the cache-outcome tag used in record
// rendering and the latency split.
const char* CacheOutcomeName(const QueryRecord& record);

// One JSONL line (no trailing newline). `trace_json`, already valid JSON,
// is embedded verbatim under "trace"; everything else is escaped.
std::string QueryRecordToJson(const QueryRecord& record);

// Bounded ring of the last `capacity` QueryRecords. One mutex; the
// critical section is a deque push + pop, negligible next to a query.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity) : capacity_(capacity) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Stamps record.seq (1-based, total admission order) and appends,
  // dropping the oldest record past capacity. Returns the stamped seq.
  uint64_t Add(QueryRecord record);

  // Newest first. limit == 0 means everything retained.
  std::vector<QueryRecord> Recent(size_t limit = 0) const;
  // Retained records ranked by serve_ns descending (ties: newer first).
  std::vector<QueryRecord> Slowest(size_t limit) const;

  size_t capacity() const { return capacity_; }
  uint64_t total_added() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_seq_ = 1;
  std::deque<QueryRecord> ring_;  // oldest first
};

// Append-only JSONL sink for slow queries. Opens lazily on first append
// (so configuring a path costs nothing until a query is actually slow)
// and flushes per line — a slow query is rare and worth durable capture.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::string path) : path_(std::move(path)) {}

  Status Append(const QueryRecord& record);
  uint64_t appended() const;
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  uint64_t appended_ = 0;
};

// The serve-path latency histograms. queue/serve cover every query;
// parse/rewrite/execute record only when the phase actually ran (an L0
// hit skips parse, a template hit skips rewrite — recording their zeros
// would fake an impossibly fast phase); the serve_* split buckets serve
// time by cache outcome so a cache regression shows up as a distribution
// shift, not just a ratio.
struct LatencyHistograms {
  obs::Histogram queue;
  obs::Histogram serve;
  obs::Histogram parse;
  obs::Histogram rewrite;
  obs::Histogram execute;
  obs::Histogram serve_l0_hit;
  obs::Histogram serve_tmpl_hit;
  obs::Histogram serve_miss;
};

// Registers every histogram's quantiles (srv.latency.<name>.{p50,p90,p99,
// max,mean,count}) plus Prometheus distributions into `registry`.
void ExportLatencyMetrics(const LatencyHistograms& latency,
                          obs::MetricsRegistry* registry);

}  // namespace eds::srv

#endif  // EDS_SRV_TELEMETRY_H_
