#include "srv/codec.h"

#include <array>
#include <cstring>

namespace eds::srv {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t LoadU64(const char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void Encoder::PutString(std::string_view s) {
  if (s.size() > UINT32_MAX) s = s.substr(0, UINT32_MAX);
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

Result<uint8_t> Decoder::GetU8() {
  if (remaining() < 1) {
    return Status::InvalidArgument("codec: truncated u8");
  }
  return static_cast<uint8_t>(
      static_cast<unsigned char>(data_[pos_++]));
}

Result<uint32_t> Decoder::GetU32() {
  if (remaining() < 4) {
    return Status::InvalidArgument("codec: truncated u32");
  }
  uint32_t v = LoadU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  if (remaining() < 8) {
    return Status::InvalidArgument("codec: truncated u64");
  }
  uint64_t v = LoadU64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<std::string> Decoder::GetString() {
  EDS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (len > max_string_bytes_) {
    return Status::InvalidArgument("codec: string length " +
                                   std::to_string(len) + " exceeds cap " +
                                   std::to_string(max_string_bytes_));
  }
  if (len > remaining()) {
    return Status::InvalidArgument("codec: truncated string (declared " +
                                   std::to_string(len) + ", have " +
                                   std::to_string(remaining()) + ")");
  }
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

void EncodeFileHeader(const FileHeader& header, std::string* out) {
  const size_t start = out->size();
  out->append(FileHeader::kMagic, sizeof(FileHeader::kMagic));
  Encoder enc(out);
  enc.PutU32(header.version);
  enc.PutU32(header.flags);
  enc.PutU64(header.catalog_epoch);
  enc.PutU64(header.rules_epoch);
  const uint32_t crc =
      Crc32(std::string_view(*out).substr(start, out->size() - start));
  enc.PutU32(crc);
}

Result<FileHeader> DecodeFileHeader(std::string_view data) {
  if (data.size() < FileHeader::kEncodedSize) {
    return Status::InvalidArgument("persist header: file too short (" +
                                   std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), FileHeader::kMagic,
                  sizeof(FileHeader::kMagic)) != 0) {
    return Status::InvalidArgument("persist header: bad magic");
  }
  const uint32_t stored_crc = LoadU32(data.data() + 28);
  const uint32_t computed_crc = Crc32(data.substr(0, 28));
  if (stored_crc != computed_crc) {
    return Status::InvalidArgument("persist header: checksum mismatch");
  }
  FileHeader header;
  header.version = LoadU32(data.data() + 4);
  header.flags = LoadU32(data.data() + 8);
  header.catalog_epoch = LoadU64(data.data() + 12);
  header.rules_epoch = LoadU64(data.data() + 20);
  if (header.version != FileHeader::kVersion) {
    return Status::Unsupported("persist header: format version " +
                               std::to_string(header.version) +
                               " (this build reads version " +
                               std::to_string(FileHeader::kVersion) + ")");
  }
  if (header.flags != 0) {
    return Status::Unsupported("persist header: unknown flags");
  }
  return header;
}

void AppendRecord(std::string_view payload, std::string* out) {
  Encoder enc(out);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  out->append(payload.data(), payload.size());
}

RecordRead ReadRecord(std::string_view data, size_t* pos,
                      size_t max_record_bytes) {
  RecordRead out;
  if (*pos == data.size()) {
    out.status = RecordStatus::kEnd;
    return out;
  }
  if (data.size() - *pos < 8) {
    out.status = RecordStatus::kTorn;  // partial frame at the tail
    return out;
  }
  const uint32_t len = LoadU32(data.data() + *pos);
  const uint32_t crc = LoadU32(data.data() + *pos + 4);
  if (len > max_record_bytes || len > data.size() - *pos - 8) {
    // Either a corrupted length prefix or a write cut off mid-payload;
    // both mean nothing after this point can be trusted to be framed.
    out.status = RecordStatus::kTorn;
    return out;
  }
  std::string_view payload = data.substr(*pos + 8, len);
  *pos += 8 + static_cast<size_t>(len);
  if (Crc32(payload) != crc) {
    out.status = RecordStatus::kBadCrc;
    return out;
  }
  out.status = RecordStatus::kOk;
  out.payload = payload;
  return out;
}

}  // namespace eds::srv
