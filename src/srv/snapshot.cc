#include "srv/snapshot.h"

#include <utility>

namespace eds::srv {

Result<SnapshotRef> BuildSnapshot(
    const catalog::Catalog& source,
    const rules::OptimizerOptions& optimizer_options, uint64_t rules_epoch) {
  auto snap = std::make_shared<ServingSnapshot>();
  snap->catalog = source.Clone();
  EDS_ASSIGN_OR_RETURN(
      std::unique_ptr<rules::Optimizer> opt,
      rules::MakeDefaultOptimizer(snap->catalog.get(), optimizer_options));
  snap->optimizer = std::move(opt);
  snap->catalog_epoch = snap->catalog->epoch();
  snap->rules_epoch = rules_epoch;
  return SnapshotRef(std::move(snap));
}

}  // namespace eds::srv
