#ifndef EDS_SRV_L0_CACHE_H_
#define EDS_SRV_L0_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "term/term.h"

namespace eds::srv {

// Level-0 exact-text plan cache: the cheapest possible serving fast path,
// consulted before the parser even runs. The key is the query text after a
// lexical normalization (whitespace collapsed, comments stripped, case
// folded outside string literals) — no parse, no fingerprint, just one
// string hash. A hit replays the fully instantiated optimized plan plus
// its result columns, skipping parse, translate, rewrite, fingerprinting
// AND schema inference; only execution runs. Queries that differ only in
// literals miss here and fall through to the structural plan cache
// (srv/plan_cache.h), which is exactly the layering: L0 catches verbatim
// repeats (dashboards, retries), L1 catches parameterized repeats.
//
// Invalidation mirrors the plan cache: each entry remembers the catalog
// and rule-library epochs it was built under, and a lookup that finds a
// stale entry drops it (counted as an invalidation) and reports a miss.
//
// Concurrency: one mutex around a classic LRU (list + index). The critical
// section is a string hash and a list splice — contention is negligible
// next to query execution, so sharding would be ceremony.
class L0Cache {
 public:
  struct Entry {
    term::TermRef raw_plan;        // pre-rewrite plan (for QueryResult)
    term::TermRef plan;            // optimized, fully instantiated plan
    std::vector<std::string> columns;  // inferred output column names
    uint64_t catalog_epoch = 0;
    uint64_t rules_epoch = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;      // capacity evictions (LRU tail)
    uint64_t invalidations = 0;  // stale-epoch entries dropped at lookup
    uint64_t oversize_rejects = 0;  // keys past the length cap, not cached
    uint64_t entries = 0;        // live entries
  };

  // One live entry plus its bookkeeping, as Snapshot() reports it; `hits`
  // is the per-entry hit count (the pg_query_rewrite-style rewrite_count)
  // persistence ranks hotness by.
  struct SnapshotEntry {
    std::string key;
    Entry entry;
    uint64_t hits = 0;
  };

  // Keys longer than this never enter the cache: one pathological
  // megaquery must not bloat the key set (or, downstream, the persisted
  // cache file). Lookups and inserts past the cap are counted as
  // oversize_rejects and behave as misses/no-ops.
  static constexpr size_t kDefaultMaxKeyBytes = 1 << 16;

  explicit L0Cache(size_t capacity,
                   size_t max_key_bytes = kDefaultMaxKeyBytes)
      : capacity_(capacity), max_key_bytes_(max_key_bytes) {}

  L0Cache(const L0Cache&) = delete;
  L0Cache& operator=(const L0Cache&) = delete;

  // Returns a copy of the entry for `normalized` and bumps it to
  // most-recent, or nullopt. An entry whose epochs do not match the
  // current ones is erased (invalidation) and reported as a miss.
  std::optional<Entry> Lookup(const std::string& normalized,
                              uint64_t catalog_epoch, uint64_t rules_epoch);

  // Inserts (or refreshes) the entry, evicting the LRU tail past capacity.
  // A zero-capacity cache is a counted no-op, as is an oversize key.
  // `seed_hits` pre-charges the entry's hit counter (warm restore keeps
  // persisted hotness so the next snapshot ranks it correctly).
  void Insert(const std::string& normalized, Entry entry,
              uint64_t seed_hits = 0);

  // Drops every entry (the shell's \cache clear).
  void InvalidateAll();

  Stats GetStats() const;

  // Copies every live entry with its hit count, most-recently-used first.
  // The persistence snapshot thread calls this off the serve path.
  std::vector<SnapshotEntry> Snapshot() const;

  size_t max_key_bytes() const { return max_key_bytes_; }

 private:
  struct Node {
    std::string key;
    Entry entry;
    uint64_t hits = 0;
  };
  using NodeList = std::list<Node>;  // most-recent first

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_key_bytes_;
  NodeList lru_;
  std::unordered_map<std::string, NodeList::iterator> index_;
  Stats stats_;
};

// Lexical normalization for L0 keying: '--' comments become whitespace,
// whitespace runs collapse to one space, letters fold to upper case —
// except inside single-quoted string literals, which pass through verbatim
// ('' doubling included). Leading/trailing whitespace is trimmed. Purely
// lexical: never parses, never fails. Normalization stops once the output
// exceeds `max_bytes` (the result is then longer than max_bytes, so
// callers can detect the overflow without scanning a megaquery to its
// end); the default keeps the full text.
std::string NormalizeQueryText(std::string_view esql,
                               size_t max_bytes = SIZE_MAX);

// Metrics exporter, mirroring ExportCacheStats: srv.l0.*.
void ExportL0Stats(const L0Cache::Stats& stats, obs::MetricsRegistry* registry);

}  // namespace eds::srv

#endif  // EDS_SRV_L0_CACHE_H_
