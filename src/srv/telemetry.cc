#include "srv/telemetry.h"

#include <algorithm>
#include <sstream>

#include "obs/trace.h"

namespace eds::srv {

const char* CacheOutcomeName(const QueryRecord& record) {
  if (!record.ok) return "error";
  if (record.l0_hit) return "l0";
  if (record.cache_hit) return "tmpl";
  return "miss";
}

namespace {

void AppendLimits(std::ostringstream& os, const char* key,
                  const gov::GovernorLimits& limits) {
  os << "\"" << key << "\":{\"deadline_ms\":" << limits.deadline_ms
     << ",\"max_term_nodes\":" << limits.max_term_nodes
     << ",\"max_rows\":" << limits.max_rows << "}";
}

}  // namespace

std::string QueryRecordToJson(const QueryRecord& record) {
  std::ostringstream os;
  os << "{\"seq\":" << record.seq << ",\"text\":\""
     << obs::JsonEscape(record.text) << "\",\"outcome\":\""
     << CacheOutcomeName(record) << "\",\"ok\":"
     << (record.ok ? "true" : "false");
  if (!record.ok) os << ",\"error\":\"" << obs::JsonEscape(record.error) << "\"";
  os << ",\"worker\":" << record.worker_id << ",\"rows\":" << record.rows
     << ",\"queue_ns\":" << record.queue_ns
     << ",\"serve_ns\":" << record.serve_ns << ",\"phases\":{\"parse_ns\":"
     << record.phases.parse_ns << ",\"translate_ns\":"
     << record.phases.translate_ns << ",\"rewrite_ns\":"
     << record.phases.rewrite_ns << ",\"schema_ns\":"
     << record.phases.schema_ns << ",\"exec_ns\":" << record.phases.exec_ns
     << ",\"total_ns\":" << record.phases.total_ns << "},";
  AppendLimits(os, "base", record.base);
  os << ",";
  AppendLimits(os, "granted", record.granted);
  if (record.template_hash != 0) {
    os << ",\"template_hash\":" << record.template_hash;
  }
  if (!record.trip.empty()) {
    os << ",\"trip\":\"" << obs::JsonEscape(record.trip) << "\"";
  }
  os << ",\"slow\":" << (record.slow ? "true" : "false");
  if (!record.trace_json.empty()) {
    // Already a valid JSON object (TraceSink::ToChromeTraceJson), embedded
    // verbatim except that newlines become spaces: the trace writer emits
    // one event per line, but a QueryRecord must stay one JSONL line, and
    // any literal newline in the trace is token-separating whitespace
    // (string contents arrive JSON-escaped).
    std::string trace = record.trace_json;
    while (!trace.empty() && (trace.back() == '\n' || trace.back() == '\r')) {
      trace.pop_back();
    }
    for (char& c : trace) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    os << ",\"trace\":" << trace;
  }
  os << "}";
  return os.str();
}

uint64_t FlightRecorder::Add(QueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  const uint64_t seq = record.seq;
  if (capacity_ == 0) return seq;  // counted, never retained
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
  return seq;
}

std::vector<QueryRecord> FlightRecorder::Recent(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  const size_t n =
      limit == 0 ? ring_.size() : std::min(limit, ring_.size());
  out.reserve(n);
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<QueryRecord> FlightRecorder::Slowest(size_t limit) const {
  std::vector<QueryRecord> out = Recent(0);
  std::stable_sort(out.begin(), out.end(),
                   [](const QueryRecord& a, const QueryRecord& b) {
                     return a.serve_ns > b.serve_ns;
                   });
  if (limit != 0 && out.size() > limit) out.resize(limit);
  return out;
}

uint64_t FlightRecorder::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

Status SlowQueryLog::Append(const QueryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) {
    out_.open(path_, std::ios::app);
    if (!out_) {
      return Status::RuntimeError("cannot open slow-query log " + path_);
    }
  }
  out_ << QueryRecordToJson(record) << "\n";
  out_.flush();
  if (!out_) return Status::RuntimeError("slow-query log write failed");
  ++appended_;
  return Status::OK();
}

uint64_t SlowQueryLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

void ExportLatencyMetrics(const LatencyHistograms& latency,
                          obs::MetricsRegistry* registry) {
  ExportHistogramQuantiles("srv.latency.queue", latency.queue.Snapshot(),
                           registry);
  ExportHistogramQuantiles("srv.latency.serve", latency.serve.Snapshot(),
                           registry);
  ExportHistogramQuantiles("srv.latency.parse", latency.parse.Snapshot(),
                           registry);
  ExportHistogramQuantiles("srv.latency.rewrite", latency.rewrite.Snapshot(),
                           registry);
  ExportHistogramQuantiles("srv.latency.execute", latency.execute.Snapshot(),
                           registry);
  ExportHistogramQuantiles("srv.latency.serve.l0_hit",
                           latency.serve_l0_hit.Snapshot(), registry);
  ExportHistogramQuantiles("srv.latency.serve.tmpl_hit",
                           latency.serve_tmpl_hit.Snapshot(), registry);
  ExportHistogramQuantiles("srv.latency.serve.miss",
                           latency.serve_miss.Snapshot(), registry);
}

}  // namespace eds::srv
