#ifndef EDS_SRV_FINGERPRINT_H_
#define EDS_SRV_FINGERPRINT_H_

#include <cstddef>

#include "common/result.h"
#include "term/term.h"

namespace eds::srv {

// Query fingerprinting for the rewritten-plan cache: two queries that
// differ only in literal values ("Salary > 10000" vs "Salary > 12000")
// should share one cache entry, so the rewrite work done for the first is
// replayed for the second. The fingerprint of a raw LERA plan is its
// *template*: the same term with every parameterizable literal replaced by
// a reserved parameter variable ($CQ0, $CQ1, ... in pre-order), plus the
// extracted literal list. Templates are ordinary hash-consed terms, so two
// structurally identical templates are pointer-identical while alive —
// which is exactly what the cache keys on.
//
// What gets parameterized: Int/Real/String constants in value positions
// (comparison operands, projection expressions, collection members).
// What never does:
//   * structural constants — RELATION names, ATTR indices, FIELD names,
//     NEST/UNNEST column indices — which select schema objects, not values;
//   * booleans — TRUE/FALSE in a qualification is plan shape (the
//     translator emits TRUE quals that simplify away), not a parameter;
//   * every literal of a plan containing FIX — recursive plans feed the
//     magic-set rules, whose adornment choices depend on *which* constants
//     bind which attributes, so their rewrite is literal-sensitive and the
//     template keeps literals inline (the cache then only hits on exact
//     repeats, which is still sound).
//
// Soundness of replaying a template rewrite under different literals rests
// on parameter variables being opaque: no rule method can evaluate them
// (EVALUATE and friends fail on non-ground terms, which makes the rule not
// fire), so every rule that *does* fire on the template fired for
// structural/catalog reasons and its application is valid under any
// substitution of the parameters. Positional parameters keep distinct
// literal occurrences distinct even when their values coincide, so no rule
// can fire off an accidental value alias. See docs/server.md.
struct Fingerprint {
  term::TermRef tmpl;     // canonical parameterized plan (the cache key)
  term::TermList params;  // literal constants, index i <-> $CQi
  // False when the plan was literal-sensitive (contains FIX): tmpl is the
  // raw plan itself and params is empty.
  bool parameterized = false;
};

// Builds the fingerprint of a raw (pre-rewrite) LERA plan. Total, never
// fails: a plan with nothing to parameterize yields itself as template.
Fingerprint FingerprintPlan(const term::TermRef& raw);

// Substitutes `params` back into a cached normal form derived from a
// template with `params.size()` parameter variables. Errors only on a
// malformed cache entry (a parameter index out of range), which callers
// treat as a miss, never as a query failure.
Result<term::TermRef> InstantiatePlan(const term::TermRef& nf_tmpl,
                                      const term::TermList& params);

// The reserved parameter-variable prefix ("$CQ"); exposed for tests.
extern const char kParamPrefix[];

}  // namespace eds::srv

#endif  // EDS_SRV_FINGERPRINT_H_
