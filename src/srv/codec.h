#ifndef EDS_SRV_CODEC_H_
#define EDS_SRV_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace eds::srv {

// Byte-level encoding for the persisted plan-cache file (srv/persist.h):
// little-endian fixed-width integers, length-prefixed strings, CRC32C-free
// plain CRC32 checksums, and [len][crc][payload] record framing. The codec
// knows nothing about terms or caches — it only moves bytes, so the
// corpus-fuzzable attack surface (truncations, bit flips, giant lengths)
// is concentrated here behind bounds-checked reads.

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the same function
// zlib's crc32() computes. Table-driven, no dependencies.
uint32_t Crc32(std::string_view data);

// Appends little-endian scalars and length-prefixed strings to a buffer.
// Encoding cannot fail; all failure handling lives in Decoder.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  // [u32 length][bytes]; strings longer than UINT32_MAX are a caller bug
  // (persist caps sizes far below that) and are truncated defensively.
  void PutString(std::string_view s);

 private:
  std::string* out_;
};

// Bounds-checked reader over a byte span. Every Get* validates that the
// bytes are present before touching them; GetString additionally caps the
// declared length against both the remaining bytes and `max_string_bytes`
// so a corrupt length prefix can never drive a giant allocation — the
// decoder allocates at most what the file actually contains.
class Decoder {
 public:
  Decoder(std::string_view data, size_t max_string_bytes)
      : data_(data), max_string_bytes_(max_string_bytes) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t max_string_bytes_;
  size_t pos_ = 0;
};

// Versioned file header. Epochs identify the catalog / rule-library state
// the cached plans were built under; a loader whose session epochs differ
// treats every record as stale. The flags word is reserved (must be zero
// in version 1).
struct FileHeader {
  static constexpr char kMagic[4] = {'E', 'D', 'S', 'C'};
  static constexpr uint32_t kVersion = 1;
  // Serialized size: magic(4) + version(4) + flags(4) + catalog_epoch(8)
  // + rules_epoch(8) + crc(4).
  static constexpr size_t kEncodedSize = 32;

  uint32_t version = kVersion;
  uint32_t flags = 0;
  uint64_t catalog_epoch = 0;
  uint64_t rules_epoch = 0;
};

// Appends the header (including its trailing CRC32 of the preceding 28
// bytes) to `out`.
void EncodeFileHeader(const FileHeader& header, std::string* out);

// Validates magic, CRC, and version; returns the decoded header or a
// descriptive error. Never reads past data.size().
Result<FileHeader> DecodeFileHeader(std::string_view data);

// Record framing: [u32 payload_len][u32 payload_crc][payload]. The payload
// is opaque to this layer.
void AppendRecord(std::string_view payload, std::string* out);

// Outcome of pulling one record off the wire. kBadCrc consumes the record
// (framing was intact, payload rotted — skip it and keep reading); kTorn
// means the frame itself is unreadable (truncated or an absurd length), so
// the reader must stop: everything before this point is the surviving
// prefix.
enum class RecordStatus { kOk, kBadCrc, kTorn, kEnd };

struct RecordRead {
  RecordStatus status = RecordStatus::kEnd;
  std::string_view payload;  // valid only when status == kOk
};

// Reads the record starting at data[*pos]. On kOk and kBadCrc, *pos
// advances past the record; on kTorn and kEnd it is left unchanged.
// `max_record_bytes` bounds the declared payload length (lengths past it
// are treated as torn — a bit flip in a length prefix must not desync the
// whole tail into phantom records).
RecordRead ReadRecord(std::string_view data, size_t* pos,
                      size_t max_record_bytes);

}  // namespace eds::srv

#endif  // EDS_SRV_CODEC_H_
