#ifndef EDS_SRV_SNAPSHOT_H_
#define EDS_SRV_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "catalog/catalog.h"
#include "common/result.h"
#include "rules/optimizer.h"

namespace eds::srv {

// An immutable view of everything a worker needs to serve a query: a frozen
// catalog clone plus the optimizer compiled against it, tagged with the
// (catalog, rules) epochs it was built at. Snapshots are published via
// shared_ptr swap on DDL/rule changes; each admitted query pins the snapshot
// it was admitted under, so DDL never blocks in-flight queries — they drain
// on the old snapshot while new arrivals see the new one. Both plan-cache
// tiers key on these epochs exactly as before, which makes invalidation
// follow publication for free.
struct ServingSnapshot {
  // Declaration order matters: the optimizer holds pointers into the
  // catalog, so the catalog member must be destroyed last.
  std::shared_ptr<const catalog::Catalog> catalog;
  std::shared_ptr<const rules::Optimizer> optimizer;
  uint64_t catalog_epoch = 0;
  uint64_t rules_epoch = 0;
};

using SnapshotRef = std::shared_ptr<const ServingSnapshot>;

// Clones `source` and compiles a fresh optimizer (with `optimizer_options`)
// against the clone. `rules_epoch` is the session's rule-library counter at
// build time. The caller must serialize this against concurrent catalog
// mutation (QueryService holds its DDL mutex); the returned snapshot itself
// is immutable and safe to share across any number of threads.
Result<SnapshotRef> BuildSnapshot(
    const catalog::Catalog& source,
    const rules::OptimizerOptions& optimizer_options, uint64_t rules_epoch);

// Holds the current snapshot; readers copy the shared_ptr under a short
// mutex, writers swap it. One publisher per QueryService.
class SnapshotPublisher {
 public:
  SnapshotRef Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  void Publish(SnapshotRef snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snapshot);
    ++publishes_;
  }

  // Number of Publish calls since construction (exported as
  // srv.snapshot.publishes).
  uint64_t publish_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return publishes_;
  }

 private:
  mutable std::mutex mu_;
  SnapshotRef current_;
  uint64_t publishes_ = 0;
};

}  // namespace eds::srv

#endif  // EDS_SRV_SNAPSHOT_H_
