#include "rewrite/builtins.h"

#include <algorithm>

#include "common/strings.h"
#include "gov/failpoint.h"
#include "lera/lera.h"
#include "lera/schema.h"

namespace eds::rewrite {

using term::Bindings;
using term::Term;
using term::TermList;
using term::TermRef;

namespace {

// Instantiates one raw rule argument: a bare collection variable becomes a
// LIST of its bound elements; anything else goes through substitution.
Result<TermRef> InstArg(const TermRef& arg, const Bindings& env) {
  if (arg->is_collection_variable()) {
    const TermList* seq = env.LookupCollVar(arg->var_name());
    if (seq == nullptr) {
      return Status::InvalidArgument("unbound collection variable '" +
                                     arg->var_name() + "*'");
    }
    return Term::List(*seq);
  }
  return term::ApplySubstitution(arg, env);
}

Status WantVariable(const TermRef& t, const char* what) {
  if (!t->is_variable()) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be a variable, got " +
                                   t->ToString());
  }
  return Status::OK();
}

// ---------------- standard methods ----------------

// EVALUATE(expr, out): fold expr to a constant and bind out (Fig. 12).
Status MethodEvaluate(const TermList& args, Bindings* env,
                      const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.EVALUATE");
  if (args.size() != 2) {
    return Status::InvalidArgument("EVALUATE expects (expr, out)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[1], "EVALUATE output"));
  EDS_ASSIGN_OR_RETURN(TermRef expr, InstArg(args[0], *env));
  std::optional<value::Value> v = TryEvalToValue(expr, ctx);
  if (!v.has_value()) {
    return Status::InvalidArgument("EVALUATE: expression is not foldable: " +
                                   expr->ToString());
  }
  env->SetVar(args[1]->var_name(), ValueToTerm(*v));
  return Status::OK();
}

// SCHEMA(rel, out): out := LIST($1.1, ..., $1.n), the identity projection
// over rel's schema (used when pushing a search below NEST, Fig. 8). When
// the first argument is (or is bound to) a LIST of relations, the identity
// projection spans all of them: $1.1..$1.n, $2.1..$2.m, ...
Status MethodSchema(const TermList& args, Bindings* env,
                    const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.SCHEMA");
  if (args.size() != 2) {
    return Status::InvalidArgument("SCHEMA expects (rel, out)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[1], "SCHEMA output"));
  if (ctx.catalog == nullptr) {
    return Status::InvalidArgument("SCHEMA: no catalog in context");
  }
  EDS_ASSIGN_OR_RETURN(TermRef rel, InstArg(args[0], *env));
  TermList inputs;
  if (rel->IsApply(term::kList)) {
    inputs = rel->args();
  } else {
    inputs.push_back(rel);
  }
  TermList projs;
  for (size_t i = 0; i < inputs.size(); ++i) {
    EDS_ASSIGN_OR_RETURN(lera::Schema schema,
                         lera::InferSchema(inputs[i], *ctx.catalog));
    for (size_t j = 1; j <= schema.size(); ++j) {
      projs.push_back(
          Term::Attr(static_cast<int64_t>(i + 1), static_cast<int64_t>(j)));
    }
  }
  env->SetVar(args[1]->var_name(), Term::List(std::move(projs)));
  return Status::OK();
}

// POSITION(x*, out): out := |x*| + 1, the 1-based input position following
// the inputs absorbed by x* (used to address "the operator after x*" in
// permutation rules).
Status MethodPosition(const TermList& args, Bindings* env,
                      const RewriteContext& ctx) {
  (void)ctx;
  if (args.size() != 2 || !args[0]->is_collection_variable()) {
    return Status::InvalidArgument("POSITION expects (x*, out)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[1], "POSITION output"));
  const TermList* seq = env->LookupCollVar(args[0]->var_name());
  if (seq == nullptr) {
    return Status::InvalidArgument("POSITION: unbound collection variable");
  }
  env->SetVar(args[1]->var_name(),
              Term::Int(static_cast<int64_t>(seq->size()) + 1));
  return Status::OK();
}

// MERGE_SUBST(e, x*, v*, z, b, out): attribute remapping for the
// search-merging rule (Fig. 7). The outer search's inputs were
// LIST(x*, SEARCH(z, g, b), v*); after merging they are append(x*, v*, z).
// Every ATTR in `e` is remapped: refs into x* stay, refs into the inner
// search unfold into the inner projection b (with b's own refs shifted past
// x* and v*), refs into v* shift left by one.
Status MethodMergeSubst(const TermList& args, Bindings* env,
                        const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.MERGE_SUBST");
  (void)ctx;
  if (args.size() != 6) {
    return Status::InvalidArgument(
        "MERGE_SUBST expects (e, x*, v*, z, b, out)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[5], "MERGE_SUBST output"));
  EDS_ASSIGN_OR_RETURN(TermRef e, InstArg(args[0], *env));
  EDS_ASSIGN_OR_RETURN(TermRef xs, InstArg(args[1], *env));
  EDS_ASSIGN_OR_RETURN(TermRef vs, InstArg(args[2], *env));
  EDS_ASSIGN_OR_RETURN(TermRef z, InstArg(args[3], *env));
  EDS_ASSIGN_OR_RETURN(TermRef b, InstArg(args[4], *env));
  if (!xs->IsApply(term::kList) || !vs->IsApply(term::kList) ||
      !z->IsApply(term::kList) || !b->IsApply(term::kList)) {
    return Status::InvalidArgument("MERGE_SUBST: x*/v*/z/b must be lists");
  }
  const int64_t x_count = static_cast<int64_t>(xs->arity());
  const int64_t v_count = static_cast<int64_t>(vs->arity());
  Status failure = Status::OK();
  TermRef mapped = lera::MapAttrs(e, [&](int64_t i, int64_t j) -> TermRef {
    if (i <= x_count) return Term::Attr(i, j);
    if (i == x_count + 1) {
      // Unfold through the inner projection list b.
      if (j < 1 || static_cast<size_t>(j) > b->arity()) {
        if (failure.ok()) {
          failure = Status::InvalidArgument(
              "MERGE_SUBST: inner projection index out of range");
        }
        return Term::Attr(i, j);
      }
      // b's refs address z's inputs (1..|z|); shift them past x* and v*.
      return lera::MapAttrs(b->arg(static_cast<size_t>(j - 1)),
                            [&](int64_t bi, int64_t bj) {
                              return Term::Attr(bi + x_count + v_count, bj);
                            });
    }
    return Term::Attr(i - 1, j);  // refs into v* shift left by one
  });
  EDS_RETURN_IF_ERROR(failure);
  env->SetVar(args[5]->var_name(), mapped);
  return Status::OK();
}

// SHIFT_ATTRS(e, x*, v*, out): shifts every ATTR input index in `e` by
// |x*| + |v*|. Used by the search-merging rule to renumber the inner
// qualification, whose references are in the inner-input space (1..|z|),
// after append(x*, v*, z) moves those inputs to the end.
Status MethodShiftAttrs(const TermList& args, Bindings* env,
                        const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.SHIFT_ATTRS");
  (void)ctx;
  if (args.size() != 4) {
    return Status::InvalidArgument("SHIFT_ATTRS expects (e, x*, v*, out)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[3], "SHIFT_ATTRS output"));
  EDS_ASSIGN_OR_RETURN(TermRef e, InstArg(args[0], *env));
  EDS_ASSIGN_OR_RETURN(TermRef xs, InstArg(args[1], *env));
  EDS_ASSIGN_OR_RETURN(TermRef vs, InstArg(args[2], *env));
  if (!xs->IsApply(term::kList) || !vs->IsApply(term::kList)) {
    return Status::InvalidArgument("SHIFT_ATTRS: x*/v* must be lists");
  }
  const int64_t shift =
      static_cast<int64_t>(xs->arity()) + static_cast<int64_t>(vs->arity());
  TermRef shifted = lera::MapAttrs(e, [shift](int64_t i, int64_t j) {
    return Term::Attr(i + shift, j);
  });
  env->SetVar(args[3]->var_name(), std::move(shifted));
  return Status::OK();
}

// SPLIT_QUAL(f, pos, z, nested_cols, pushed, kept):
// Splits the conjuncts of f: a conjunct is *pushable* when all its ATTR
// references address input `pos` and only the non-nested output columns of
// NEST(z, nested_cols, _). Pushable conjuncts are renumbered to refer to
// input 1 with z's own column numbering and conjoined into `pushed`; the
// rest are conjoined into `kept`. Fails when nothing is pushable (so the
// push-through-nest rule does not fire vacuously).
Status MethodSplitQual(const TermList& args, Bindings* env,
                       const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.SPLIT_QUAL");
  if (args.size() != 6) {
    return Status::InvalidArgument(
        "SPLIT_QUAL expects (f, pos, z, nested_cols, pushed, kept)");
  }
  EDS_RETURN_IF_ERROR(WantVariable(args[4], "SPLIT_QUAL pushed output"));
  EDS_RETURN_IF_ERROR(WantVariable(args[5], "SPLIT_QUAL kept output"));
  EDS_ASSIGN_OR_RETURN(TermRef f, InstArg(args[0], *env));
  EDS_ASSIGN_OR_RETURN(TermRef pos_t, InstArg(args[1], *env));
  EDS_ASSIGN_OR_RETURN(TermRef z, InstArg(args[2], *env));
  EDS_ASSIGN_OR_RETURN(TermRef cols_t, InstArg(args[3], *env));
  std::optional<value::Value> pos_v = TryEvalToValue(pos_t, ctx);
  if (!pos_v.has_value() || pos_v->kind() != value::ValueKind::kInt) {
    return Status::InvalidArgument("SPLIT_QUAL: pos must fold to an integer");
  }
  const int64_t pos = pos_v->AsInt();
  if (!cols_t->IsApply(term::kList)) {
    return Status::InvalidArgument("SPLIT_QUAL: nested_cols must be a LIST");
  }
  std::vector<int64_t> nested;
  for (const TermRef& c : cols_t->args()) {
    if (!c->is_constant() || c->constant().kind() != value::ValueKind::kInt) {
      return Status::InvalidArgument("SPLIT_QUAL: nested col not an int");
    }
    nested.push_back(c->constant().AsInt());
  }
  if (ctx.catalog == nullptr) {
    return Status::InvalidArgument("SPLIT_QUAL: no catalog in context");
  }
  EDS_ASSIGN_OR_RETURN(lera::Schema z_schema,
                       lera::InferSchema(z, *ctx.catalog));
  // NEST output column j (1-based, among non-nested) -> z input column.
  std::vector<int64_t> out_to_in;
  for (size_t c = 1; c <= z_schema.size(); ++c) {
    if (std::find(nested.begin(), nested.end(), static_cast<int64_t>(c)) ==
        nested.end()) {
      out_to_in.push_back(static_cast<int64_t>(c));
    }
  }
  TermList pushed, kept;
  for (const TermRef& conj : term::Conjuncts(f)) {
    std::vector<lera::AttrRef> attrs;
    lera::CollectAttrs(conj, &attrs);
    bool pushable = !attrs.empty();
    for (const lera::AttrRef& a : attrs) {
      if (a.input != pos || a.column < 1 ||
          static_cast<size_t>(a.column) > out_to_in.size()) {
        pushable = false;
        break;
      }
    }
    if (pushable) {
      pushed.push_back(lera::MapAttrs(conj, [&](int64_t i, int64_t j) {
        (void)i;
        return Term::Attr(1, out_to_in[static_cast<size_t>(j - 1)]);
      }));
    } else {
      kept.push_back(conj);
    }
  }
  if (pushed.empty()) {
    return Status::InvalidArgument("SPLIT_QUAL: no pushable conjunct");
  }
  env->SetVar(args[4]->var_name(), term::MakeConjunction(pushed));
  env->SetVar(args[5]->var_name(), term::MakeConjunction(kept));
  return Status::OK();
}

// ---------------- standard term functions ----------------

// APPEND(a, b, ...): splices LIST arguments, keeps other arguments as
// single elements, yields one LIST. The merge rule writes
// append(x*, v*, z) and gets LIST(x..., v..., z-elements...).
Result<TermRef> TermAppend(const TermList& args, const RewriteContext& ctx) {
  (void)ctx;
  TermList out;
  for (const TermRef& a : args) {
    if (a->IsApply(term::kList)) {
      out.insert(out.end(), a->args().begin(), a->args().end());
    } else {
      out.push_back(a);
    }
  }
  return Term::List(std::move(out));
}

// SET_UNION(a, b, ...): same for SET arguments.
Result<TermRef> TermSetUnion(const TermList& args, const RewriteContext& ctx) {
  (void)ctx;
  TermList out;
  for (const TermRef& a : args) {
    if (a->IsApply(term::kSet)) {
      out.insert(out.end(), a->args().begin(), a->args().end());
    } else {
      out.push_back(a);
    }
  }
  return Term::MakeSet(std::move(out));
}

}  // namespace

Status BuiltinRegistry::RegisterMethod(const std::string& name, MethodFn fn) {
  auto [it, inserted] = methods_.emplace(ToUpperAscii(name), std::move(fn));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("method '" + name + "' already registered");
  }
  return Status::OK();
}

Status BuiltinRegistry::RegisterTermFunction(const std::string& name,
                                             TermFn fn) {
  auto [it, inserted] = term_fns_.emplace(ToUpperAscii(name), std::move(fn));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("term function '" + name +
                                 "' already registered");
  }
  return Status::OK();
}

bool BuiltinRegistry::HasMethod(const std::string& name) const {
  return methods_.count(ToUpperAscii(name)) > 0;
}

bool BuiltinRegistry::HasTermFunction(const std::string& name) const {
  return term_fns_.count(ToUpperAscii(name)) > 0;
}

Status BuiltinRegistry::InvokeMethod(const std::string& name,
                                     const term::TermList& args,
                                     term::Bindings* env,
                                     const RewriteContext& ctx) const {
  auto it = methods_.find(ToUpperAscii(name));
  if (it == methods_.end()) {
    return Status::NotFound("unknown method '" + name + "'");
  }
  return it->second(args, env, ctx);
}

std::optional<Result<term::TermRef>> BuiltinRegistry::InvokeTermFunction(
    const std::string& name, const term::TermList& args,
    const RewriteContext& ctx) const {
  auto it = term_fns_.find(ToUpperAscii(name));
  if (it == term_fns_.end()) return std::nullopt;
  return it->second(args, ctx);
}

void BuiltinRegistry::InstallStandard() {
  (void)RegisterMethod("EVALUATE", MethodEvaluate);
  (void)RegisterMethod("SCHEMA", MethodSchema);
  (void)RegisterMethod("POSITION", MethodPosition);
  (void)RegisterMethod("MERGE_SUBST", MethodMergeSubst);
  (void)RegisterMethod("SHIFT_ATTRS", MethodShiftAttrs);
  (void)RegisterMethod("SPLIT_QUAL", MethodSplitQual);
  (void)RegisterTermFunction("APPEND", TermAppend);
  (void)RegisterTermFunction("SET_UNION", TermSetUnion);
}

// ---------------- constraint evaluation ----------------

std::optional<value::Value> TryEvalToValue(const term::TermRef& t,
                                           const RewriteContext& ctx) {
  if (t->is_constant()) return t->constant();
  if (!t->is_apply()) return std::nullopt;
  const std::string& f = t->functor();
  if (f == term::kSet || f == "BAG" || f == term::kList ||
      f == term::kTuple) {
    std::vector<value::Value> elems;
    elems.reserve(t->arity());
    for (const TermRef& a : t->args()) {
      std::optional<value::Value> v = TryEvalToValue(a, ctx);
      if (!v.has_value()) return std::nullopt;
      elems.push_back(std::move(*v));
    }
    if (f == term::kSet) return value::Value::Set(std::move(elems));
    if (f == "BAG") return value::Value::Bag(std::move(elems));
    if (f == term::kList) return value::Value::List(std::move(elems));
    return value::Value::Tuple(std::move(elems));
  }
  const value::FunctionLibrary* lib =
      ctx.catalog != nullptr ? &ctx.catalog->functions()
                             : &value::FunctionLibrary::Default();
  if (!lib->Contains(f)) return std::nullopt;
  std::vector<value::Value> args;
  args.reserve(t->arity());
  for (const TermRef& a : t->args()) {
    std::optional<value::Value> v = TryEvalToValue(a, ctx);
    if (!v.has_value()) return std::nullopt;
    args.push_back(std::move(*v));
  }
  Result<value::Value> r = lib->Call(f, args);
  if (!r.ok()) return std::nullopt;
  return std::move(r).value();
}

term::TermRef ValueToTerm(const value::Value& v) {
  // Scalars and structured values alike can live in a constant term; the
  // rewriter's structural SET/LIST terms are only needed for patterns.
  return Term::Constant(v);
}

namespace {

// Maps a collection-kind name to a type for ISA checks; null if not one.
types::TypeRef CollectionKindType(const std::string& upper) {
  using types::Type;
  using types::TypeKind;
  if (upper == "SET") return Type::MakeCollection(TypeKind::kSet, nullptr);
  if (upper == "BAG") return Type::MakeCollection(TypeKind::kBag, nullptr);
  if (upper == "LIST") return Type::MakeCollection(TypeKind::kList, nullptr);
  if (upper == "ARRAY") {
    return Type::MakeCollection(TypeKind::kArray, nullptr);
  }
  if (upper == "COLLECTION") {
    return Type::MakeCollection(TypeKind::kCollection, nullptr);
  }
  return nullptr;
}

Result<bool> EvalIsa(const term::TermList& args, const Bindings& env,
                     const RewriteContext& ctx) {
  if (args.size() != 2) {
    return Status::InvalidArgument("ISA expects two arguments");
  }
  std::string type_name;
  if (args[1]->is_variable()) {
    type_name = args[1]->var_name();
  } else if (args[1]->is_constant() &&
             args[1]->constant().kind() == value::ValueKind::kString) {
    type_name = args[1]->constant().AsString();
  } else {
    return Status::InvalidArgument("ISA: second argument must name a type");
  }
  EDS_ASSIGN_OR_RETURN(TermRef subject, InstArg(args[0], env));
  const std::string upper = ToUpperAscii(type_name);

  // Pseudo-type CONSTANT: the term folds to a value (Fig. 12's
  // ISA(x, constant) guards for EVALUATE).
  if (upper == "CONSTANT") {
    return TryEvalToValue(subject, ctx).has_value();
  }

  // Resolve the subject's type via the scope oracle when available.
  types::TypeRef subject_type;
  if (ctx.type_of) {
    Result<types::TypeRef> r = ctx.type_of(subject);
    if (r.ok()) subject_type = *r;
  }
  if (subject_type == nullptr) {
    // Syntactic fallbacks: literal collection terms and constants.
    if (subject->IsApply(term::kSet)) {
      subject_type = types::Type::MakeCollection(types::TypeKind::kSet,
                                                 nullptr);
    } else if (subject->IsApply(term::kList)) {
      subject_type = types::Type::MakeCollection(types::TypeKind::kList,
                                                 nullptr);
    } else if (subject->is_constant()) {
      switch (subject->constant().kind()) {
        case value::ValueKind::kBool:
        case value::ValueKind::kInt:
        case value::ValueKind::kReal:
        case value::ValueKind::kString: {
          // Scalar constants: type from kind.
          using types::Type;
          using types::TypeKind;
          TypeKind k = subject->constant().kind() == value::ValueKind::kBool
                           ? TypeKind::kBool
                       : subject->constant().kind() == value::ValueKind::kInt
                           ? TypeKind::kInt
                       : subject->constant().kind() == value::ValueKind::kReal
                           ? TypeKind::kReal
                           : TypeKind::kChar;
          subject_type = Type::MakeScalar(k);
          break;
        }
        case value::ValueKind::kSet:
          subject_type = types::Type::MakeCollection(types::TypeKind::kSet,
                                                     nullptr);
          break;
        case value::ValueKind::kList:
          subject_type = types::Type::MakeCollection(types::TypeKind::kList,
                                                     nullptr);
          break;
        default:
          break;
      }
    }
  }
  if (subject_type == nullptr) return false;

  if (types::TypeRef kind_type = CollectionKindType(upper)) {
    return types::Isa(subject_type, kind_type);
  }
  if (ctx.catalog == nullptr) return false;
  Result<types::TypeRef> named = ctx.catalog->types().Find(type_name);
  if (!named.ok()) {
    return Status::TypeError("ISA: unknown type '" + type_name + "'");
  }
  return types::Isa(subject_type, *named);
}

Result<bool> EvalMember(const term::TermList& args, const Bindings& env,
                        const RewriteContext& ctx) {
  if (args.size() != 2) {
    return Status::InvalidArgument("MEMBER expects two arguments");
  }
  EDS_ASSIGN_OR_RETURN(TermRef elem, InstArg(args[0], env));
  EDS_ASSIGN_OR_RETURN(TermRef coll, InstArg(args[1], env));
  std::optional<value::Value> ev = TryEvalToValue(elem, ctx);
  std::optional<value::Value> cv = TryEvalToValue(coll, ctx);
  if (ev.has_value() && cv.has_value() && cv->is_collection()) {
    const auto& es = cv->elements();
    return std::find(es.begin(), es.end(), *ev) != es.end();
  }
  if (coll->IsApply(term::kSet) || coll->IsApply(term::kList) ||
      coll->IsApply("BAG")) {
    for (const TermRef& c : coll->args()) {
      if (term::Equals(c, elem)) return true;
    }
    return false;
  }
  return Status::InvalidArgument("MEMBER: uninterpretable collection " +
                                 coll->ToString());
}

Result<bool> EvalRefersOnly(const term::TermList& args, const Bindings& env,
                            const RewriteContext& ctx, bool only) {
  (void)ctx;
  if (args.size() != (only ? 3u : 2u)) {
    return Status::InvalidArgument(only ? "REFERS_ONLY expects (qual, i, cols)"
                                        : "NOREF expects (qual, i)");
  }
  EDS_ASSIGN_OR_RETURN(TermRef qual, InstArg(args[0], env));
  EDS_ASSIGN_OR_RETURN(TermRef pos_t, InstArg(args[1], env));
  if (!pos_t->is_constant() ||
      pos_t->constant().kind() != value::ValueKind::kInt) {
    return Status::InvalidArgument("input index must be an integer");
  }
  int64_t pos = pos_t->constant().AsInt();
  std::vector<lera::AttrRef> attrs;
  lera::CollectAttrs(qual, &attrs);
  if (!only) {
    for (const lera::AttrRef& a : attrs) {
      if (a.input == pos) return false;
    }
    return true;
  }
  EDS_ASSIGN_OR_RETURN(TermRef cols_t, InstArg(args[2], env));
  if (!cols_t->IsApply(term::kList)) {
    return Status::InvalidArgument("REFERS_ONLY: cols must be a LIST");
  }
  std::vector<int64_t> cols;
  for (const TermRef& c : cols_t->args()) {
    if (!c->is_constant() || c->constant().kind() != value::ValueKind::kInt) {
      return Status::InvalidArgument("REFERS_ONLY: col not an int");
    }
    cols.push_back(c->constant().AsInt());
  }
  for (const lera::AttrRef& a : attrs) {
    if (a.input == pos &&
        std::find(cols.begin(), cols.end(), a.column) == cols.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<bool> EvalConstraint(const term::TermRef& constraint,
                            const term::Bindings& env,
                            const RewriteContext& ctx) {
  if (constraint->is_constant()) {
    if (constraint->constant().kind() == value::ValueKind::kBool) {
      return constraint->constant().AsBool();
    }
    return Status::InvalidArgument("non-boolean constraint constant");
  }
  if (!constraint->is_apply()) {
    return Status::InvalidArgument("uninterpretable constraint: " +
                                   constraint->ToString());
  }
  const std::string& f = constraint->functor();
  if (f == term::kAnd && constraint->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(bool a, EvalConstraint(constraint->arg(0), env, ctx));
    if (!a) return false;
    return EvalConstraint(constraint->arg(1), env, ctx);
  }
  if (f == term::kOr && constraint->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(bool a, EvalConstraint(constraint->arg(0), env, ctx));
    if (a) return true;
    return EvalConstraint(constraint->arg(1), env, ctx);
  }
  if (f == term::kNot && constraint->arity() == 1) {
    EDS_ASSIGN_OR_RETURN(bool a, EvalConstraint(constraint->arg(0), env, ctx));
    return !a;
  }
  if (f == "ISA") return EvalIsa(constraint->args(), env, ctx);
  if (f == "MEMBER") return EvalMember(constraint->args(), env, ctx);
  if (f == "HAS_CONJUNCT") {
    // HAS_CONJUNCT(f, c): structural membership of c among f's conjuncts;
    // the duplicate guard for constraint-addition rules (Figs. 10/11).
    if (constraint->arity() != 2) {
      return Status::InvalidArgument("HAS_CONJUNCT expects (qual, conjunct)");
    }
    EDS_ASSIGN_OR_RETURN(TermRef qual, InstArg(constraint->arg(0), env));
    EDS_ASSIGN_OR_RETURN(TermRef conj, InstArg(constraint->arg(1), env));
    for (const TermRef& c : term::Conjuncts(qual)) {
      if (term::Equals(c, conj)) return true;
    }
    return false;
  }
  if (f == "REFERS_ONLY") {
    return EvalRefersOnly(constraint->args(), env, ctx, /*only=*/true);
  }
  if (f == "NOREF") {
    return EvalRefersOnly(constraint->args(), env, ctx, /*only=*/false);
  }
  if (f == term::kEq || f == term::kNe) {
    EDS_ASSIGN_OR_RETURN(TermRef a, InstArg(constraint->arg(0), env));
    EDS_ASSIGN_OR_RETURN(TermRef b, InstArg(constraint->arg(1), env));
    std::optional<value::Value> av = TryEvalToValue(a, ctx);
    std::optional<value::Value> bv = TryEvalToValue(b, ctx);
    bool eq = (av.has_value() && bv.has_value()) ? (*av == *bv)
                                                 : term::Equals(a, b);
    return f == term::kEq ? eq : !eq;
  }
  // Generic case: instantiate the whole constraint and constant-fold it.
  EDS_ASSIGN_OR_RETURN(TermRef inst, term::ApplySubstitution(constraint, env));
  std::optional<value::Value> v = TryEvalToValue(inst, ctx);
  if (v.has_value() && v->kind() == value::ValueKind::kBool) {
    return v->AsBool();
  }
  return Status::Unsupported("cannot evaluate constraint: " +
                             inst->ToString());
}

Result<term::TermRef> EvalTermFunctions(const term::TermRef& t,
                                        const BuiltinRegistry& builtins,
                                        const RewriteContext& ctx) {
  if (!t->is_apply()) return t;
  TermList args;
  args.reserve(t->arity());
  bool changed = false;
  for (const TermRef& a : t->args()) {
    EDS_ASSIGN_OR_RETURN(TermRef e, EvalTermFunctions(a, builtins, ctx));
    if (e.get() != a.get()) changed = true;
    args.push_back(std::move(e));
  }
  std::optional<Result<TermRef>> fn =
      builtins.InvokeTermFunction(t->functor(), args, ctx);
  if (fn.has_value()) {
    EDS_ASSIGN_OR_RETURN(TermRef out, std::move(*fn));
    return out;
  }
  if (!changed) return t;
  return Term::Apply(t->functor(), std::move(args));
}

}  // namespace eds::rewrite
