#ifndef EDS_REWRITE_ENGINE_H_
#define EDS_REWRITE_ENGINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "gov/governor.h"
#include "rewrite/builtins.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace eds::obs {
class TraceSink;
}  // namespace eds::obs

namespace eds::rewrite {

// Saturation marker for block limits: apply until no rule in the block
// matches anywhere ("an infinite limit means application up to saturation",
// §4.2).
inline constexpr int64_t kSaturate = -1;

// block({rules}, value): a group of rules with an application budget. Per
// the paper, *each rule condition check* decrements the budget, not each
// successful application.
struct RuleBlock {
  std::string name;
  std::vector<Rule> rules;
  int64_t limit = kSaturate;
};

// seq({blocks}, value): the generated optimizer is a sequence of blocks
// applied in order, the whole list up to `seq_limit` times (§4.2). The same
// rule may appear in several blocks.
struct RewriteProgram {
  std::vector<RuleBlock> blocks;
  int64_t seq_limit = 1;
};

struct TraceEntry {
  std::string block;
  std::string rule;
  term::TermRef before;  // the matched subterm
  term::TermRef after;   // its replacement
};

// Per-rule cost/benefit aggregates, collected when
// RewriteOptions::profile_rules is set. `ns` is the rule's cumulative self
// time: the wall time of every candidate attempt (quick reject, match,
// constraint evaluation, instantiation) attributed to that rule, whether or
// not it fired. `nodes_delta` sums CountNodes(after) - CountNodes(before)
// over its applications — negative means the rule shrinks plans.
struct RuleProfile {
  uint64_t ns = 0;
  size_t applications = 0;
  size_t match_attempts = 0;
  size_t quick_rejects = 0;
  int64_t nodes_delta = 0;
};

struct EngineStats {
  size_t applications = 0;      // successful rule applications
  size_t condition_checks = 0;  // rule-condition checks (budget unit)
  size_t passes = 0;            // block-sequence passes executed
  size_t cycle_stops = 0;       // blocks cut short by the cycle guard
  size_t match_attempts = 0;    // candidate rules considered at a node
  size_t quick_rejects = 0;     // candidates dismissed by the pre-filter
  size_t normal_form_hits = 0;  // subtrees skipped by the normal-form memo
  size_t expr_type_hits = 0;    // InferExprType memo hits this run
  size_t expr_type_misses = 0;  // InferExprType memo misses this run
  bool safety_stop = false;     // hit RewriteOptions::max_applications
  // Set when the query governor cut the run short (deadline, node ceiling,
  // cancellation). The returned term is the best-so-far normal form —
  // semantically correct, merely under-optimized; see docs/robustness.md.
  gov::TripReason trip;
  std::map<std::string, size_t> applications_by_rule;
  // Filled only under profile_rules (empty otherwise).
  std::map<std::string, RuleProfile> rule_profiles;
};

struct RewriteOptions {
  // Global safety valve against non-terminating rule sets (termination is
  // undecidable and the DBA can add arbitrary rules, §4.2). When hit, the
  // engine stops and returns the best term so far with safety_stop set.
  size_t max_applications = 100000;
  bool collect_trace = false;
  // §7's dynamic allocation: "The limit given to a block of rules could
  // also be allocated dynamically, according to the complexity of the
  // query." When positive, every finite block limit is replaced by
  // ceil(budget_per_node × CountNodes(query)) — simple queries get small
  // budgets, complex queries large ones. Saturation (kSaturate) blocks are
  // unaffected. 0 keeps the static limits.
  double budget_per_node = 0;
  // Observability. Both default off, and the off path costs one branch per
  // instrumentation site (no clock reads, no allocation).
  //   trace_sink: records hierarchical spans — one per sequence pass, per
  //     block entry, and per *fired* rule application (attempts are far too
  //     numerous to span individually; profile_rules aggregates them).
  //   profile_rules: fills EngineStats::rule_profiles with per-rule self
  //     time and attempt/reject/delta aggregates.
  obs::TraceSink* trace_sink = nullptr;
  bool profile_rules = false;
  // Query governor (may be null, the default): checked at every
  // rule-candidate consideration and block/pass boundary. On a trip the
  // engine *degrades* — it stops and returns the best term so far with
  // EngineStats::trip set — rather than erroring, because any prefix of
  // rule applications is still a correct plan. Non-owning; must outlive
  // the Rewrite() call.
  gov::QueryGuard* guard = nullptr;
};

struct RewriteOutcome {
  term::TermRef term;
  EngineStats stats;
  std::vector<TraceEntry> trace;
};

// The rewrite engine: holds the compiled program (blocks of rules in
// sequence) and applies it to query terms. Rule applications search the
// term top-down, left to right; after an application the search restarts
// from the root so merged operators are reconsidered ("the search merging
// rule ... takes advantage of being applied more than once", §5.3).
class Engine {
 public:
  // `cat` and `builtins` must outlive the engine.
  Engine(const catalog::Catalog* cat, const BuiltinRegistry* builtins,
         RewriteProgram program);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Validates every rule in the program against the builtin registry.
  // Errors name the enclosing block and the rule (with its source location
  // when the rule came from ruledsl text).
  Status ValidateProgram() const;

  Result<RewriteOutcome> Rewrite(const term::TermRef& query,
                                 const RewriteOptions& options = {}) const;

  const RewriteProgram& program() const { return program_; }

 private:
  struct RunState;
  struct Scope;

  // Per-block discrimination index: rules keyed by their left term's root
  // functor, so a node only pays for the rules that could match it. Each
  // per-functor list is pre-merged (in block order) with the generic rules
  // — functor-variable roots match any application, variable roots match
  // anything.
  struct BlockIndex {
    std::map<std::string, std::vector<const Rule*>> merged_by_functor;
    std::vector<const Rule*> generic_apply;  // ?F- and var-rooted rules
    std::vector<const Rule*> var_only;       // var-rooted rules
    const std::vector<const Rule*>& Candidates(
        const term::TermRef& node) const;
  };

  // Attempts a single rule application anywhere in `node` (pre-order) using
  // the rules of `block`. Returns the rewritten node or null.
  term::TermRef TryOnce(const term::TermRef& node, const Scope& scope,
                        const RuleBlock& block, const BlockIndex& index,
                        int64_t* budget, RunState* state) const;

  // Tries the block's candidate rules at exactly `node`.
  term::TermRef TryRulesAt(const term::TermRef& node, const Scope& scope,
                           const RuleBlock& block, const BlockIndex& index,
                           int64_t* budget, RunState* state) const;

  const catalog::Catalog* catalog_;
  const BuiltinRegistry* builtins_;
  RewriteProgram program_;
  std::vector<BlockIndex> block_indexes_;  // parallel to program_.blocks
};

}  // namespace eds::rewrite

#endif  // EDS_REWRITE_ENGINE_H_
