#ifndef EDS_REWRITE_RULE_H_
#define EDS_REWRITE_RULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::rewrite {

// One method (action) call in a rule's conclusion:
//   SUBSTITUTE(f, z, f2)  ->  name="SUBSTITUTE", args as written.
// Methods run after the constraints accept a match and before the right
// term is instantiated; they read bound variables and bind new ones (their
// "output parameters used in the left term" per §4.1 — the outputs feed the
// right term).
struct MethodCall {
  std::string name;
  term::TermList args;

  std::string ToString() const;
};

// A rewriting rule:  lhs / constraints --> rhs / methods.
// The lhs is a pattern; constraints are boolean terms over the pattern's
// variables; the rhs may use variables bound by the lhs or by methods.
struct Rule {
  std::string name;
  term::TermRef lhs;
  term::TermList constraints;         // conjunction; empty = always
  term::TermRef rhs;
  std::vector<MethodCall> methods;    // applied in order

  // "name: lhs / c1, c2 --> rhs / m1, m2".
  std::string ToString() const;
};

class BuiltinRegistry;

// Static sanity checks on a rule:
//   * every variable in `rhs` is bound by `lhs` or appears in a method call
//     (methods may bind outputs);
//   * every constraint's variables are bound by `lhs`;
//   * at most one collection variable per SET pattern in `lhs`;
//   * methods and special constraint functors must be registered.
Status ValidateRule(const Rule& rule, const BuiltinRegistry& builtins);

}  // namespace eds::rewrite

#endif  // EDS_REWRITE_RULE_H_
