#ifndef EDS_REWRITE_RULE_H_
#define EDS_REWRITE_RULE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::rewrite {

// Where a rule (or block) was declared in its DSL source unit. Line and
// column are 1-based; 0 means "unknown" (rules built directly in C++).
// Populated by ruledsl::ParseRuleSource so validation and lint diagnostics
// can point at the offending declaration.
struct SourceLoc {
  size_t offset = 0;  // byte offset into the source unit
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  // "line 3:7", or "" when unknown.
  std::string ToString() const;
};

// One method (action) call in a rule's conclusion:
//   SUBSTITUTE(f, z, f2)  ->  name="SUBSTITUTE", args as written.
// Methods run after the constraints accept a match and before the right
// term is instantiated; they read bound variables and bind new ones (their
// "output parameters used in the left term" per §4.1 — the outputs feed the
// right term).
struct MethodCall {
  std::string name;
  term::TermList args;

  std::string ToString() const;
};

// A rewriting rule:  lhs / constraints --> rhs / methods.
// The lhs is a pattern; constraints are boolean terms over the pattern's
// variables; the rhs may use variables bound by the lhs or by methods.
struct Rule {
  std::string name;
  term::TermRef lhs;
  term::TermList constraints;         // conjunction; empty = always
  term::TermRef rhs;
  std::vector<MethodCall> methods;    // applied in order
  SourceLoc loc;                      // declaration site, when parsed

  // "name: lhs / c1, c2 --> rhs / m1, m2".
  std::string ToString() const;

  // "rule 'name'" or "rule 'name' (line 3:7)": the spelling shared by
  // validation errors and lint diagnostics.
  std::string Describe() const;
};

class BuiltinRegistry;

// Static sanity checks on a rule:
//   * every variable in `rhs` is bound by `lhs` or appears in a method call
//     (methods may bind outputs);
//   * every constraint's variables are bound by `lhs`;
//   * at most one collection variable per SET pattern in `lhs`;
//   * methods and special constraint functors must be registered.
Status ValidateRule(const Rule& rule, const BuiltinRegistry& builtins);

}  // namespace eds::rewrite

#endif  // EDS_REWRITE_RULE_H_
