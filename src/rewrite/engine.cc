#include "rewrite/engine.h"

#include <map>
#include <optional>
#include <set>
#include <unordered_set>

#include "lera/lera.h"
#include "lera/schema.h"
#include "obs/trace.h"
#include "rewrite/match.h"

namespace eds::rewrite {

using term::Term;
using term::TermList;
using term::TermRef;

// Scope information while traversing: the input schemas visible to ATTR
// references at the current position (set when descending into the
// qualification / projection arguments of relational operators). `key`
// identifies the scope for the normal-form memo: 0 for the schema-free
// scope, otherwise a never-zero digest of the defining input terms'
// identities. The digest is operator-agnostic on purpose — identical
// (canonical) input nodes imply identical input schemas no matter which
// operator consumes them.
struct Engine::Scope {
  std::vector<lera::Schema> input_schemas;
  bool has_schemas = false;
  uint64_t key = 0;
};

struct Engine::RunState {
  const RewriteOptions* options = nullptr;
  EngineStats stats;
  std::vector<TraceEntry> trace;
  const std::string* current_block = nullptr;
  // Query governor (null when no limits are set: one branch per check
  // site). A trip unwinds the traversal to Rewrite(), which returns the
  // best-so-far term instead of an error.
  gov::QueryGuard* guard = nullptr;
  // Observability (both null/false when off; every use is behind one
  // branch). The sink receives a span per pass, block entry, and fired
  // rule; profiling aggregates per-rule self time into stats.rule_profiles.
  obs::TraceSink* sink = nullptr;
  bool profile = false;
  // Run-wide InferExprType memo keyed on (canonical expression node, scope
  // key) — the scalar sibling of schema_memo below. Entries pin their terms
  // themselves (see lera::ExprTypeMemo), so method-built temporaries can't
  // alias recycled addresses.
  lera::ExprTypeMemo expr_memo;
  // Memoized schema inference keyed by term node identity. Terms are
  // immutable, so a live node's pointer uniquely identifies its subtree;
  // `retained` keeps every intermediate root alive for the whole run so a
  // freed node's address can never be recycled into a different term and
  // alias a stale memo entry. Schema inference runs at every traversal
  // descent into a qualification/projection position, which dominates
  // rewrite time without this cache. The memo is threaded through
  // InferSchema's own recursion, so nested views cost O(depth), not
  // O(depth²).
  lera::SchemaMemo schema_memo;
  std::vector<term::TermRef> retained;

  // Per-block normal-form memo: (subtree identity, scope key) pairs proven
  // to contain no redex for that block's rules. Whether a rule matches
  // inside a subtree depends only on the subtree and the scope's input
  // schemas (constraints see the catalog, which is fixed for the run), so
  // the restart-from-root walk after an application skips every untouched
  // subtree — only the rebuilt spine above the rewrite gets rescanned.
  // Entries persist across block re-entries and sequence passes.
  struct NfKey {
    const term::Term* node;
    uint64_t scope;
    bool operator==(const NfKey& o) const {
      return node == o.node && scope == o.scope;
    }
  };
  struct NfKeyHash {
    size_t operator()(const NfKey& k) const {
      uint64_t h = reinterpret_cast<uintptr_t>(k.node);
      h ^= k.scope + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  using NfSet = std::unordered_set<NfKey, NfKeyHash>;
  std::vector<NfSet> nf_memo;  // parallel to program blocks
  NfSet* current_nf = nullptr;
};

namespace {

// Smallest subtree the normal-form memo will track. Below this, a rescan
// (index lookup + quick rejects) is cheaper than the memo's hashing and
// node allocation, so tracking tiny terms would tax exactly the small
// queries that have nothing to gain from skipping.
constexpr size_t kNfMemoMinNodes = 4;

// Builds a Scope::key from the identities of defining input terms.
class ScopeKeyBuilder {
 public:
  ScopeKeyBuilder& Add(const term::Term* p) {
    h_ ^= reinterpret_cast<uintptr_t>(p);
    h_ *= 1099511628211ULL;
    return *this;
  }
  // Never 0: that value is reserved for the schema-free scope.
  uint64_t Done() const { return h_ | 1; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

}  // namespace

Engine::Engine(const catalog::Catalog* cat, const BuiltinRegistry* builtins,
               RewriteProgram program)
    : catalog_(cat), builtins_(builtins), program_(std::move(program)) {
  // Build the per-block discrimination indexes. Order within each merged
  // list preserves block order (rule priority).
  block_indexes_.reserve(program_.blocks.size());
  for (const RuleBlock& block : program_.blocks) {
    BlockIndex index;
    std::set<std::string> functors;
    for (const Rule& rule : block.rules) {
      if (rule.lhs->is_apply() && rule.lhs->functor().front() != '?') {
        functors.insert(rule.lhs->functor());
      }
    }
    for (const Rule& rule : block.rules) {
      if (rule.lhs->is_variable()) {
        index.generic_apply.push_back(&rule);
        index.var_only.push_back(&rule);
        for (const std::string& f : functors) {
          index.merged_by_functor[f].push_back(&rule);
        }
      } else if (rule.lhs->is_apply() && rule.lhs->functor().front() == '?') {
        index.generic_apply.push_back(&rule);
        for (const std::string& f : functors) {
          index.merged_by_functor[f].push_back(&rule);
        }
      } else if (rule.lhs->is_apply()) {
        index.merged_by_functor[rule.lhs->functor()].push_back(&rule);
      } else {
        // Constant-rooted left terms are legal but pointless; keep them in
        // the generic list so they still get tried.
        index.generic_apply.push_back(&rule);
        index.var_only.push_back(&rule);
      }
    }
    block_indexes_.push_back(std::move(index));
  }
}

const std::vector<const Rule*>& Engine::BlockIndex::Candidates(
    const term::TermRef& node) const {
  if (!node->is_apply()) return var_only;
  auto it = merged_by_functor.find(node->functor());
  if (it != merged_by_functor.end()) return it->second;
  return generic_apply;
}

Status Engine::ValidateProgram() const {
  for (const RuleBlock& block : program_.blocks) {
    for (const Rule& rule : block.rules) {
      Status status = ValidateRule(rule, *builtins_);
      if (!status.ok()) {
        return Status(status.code(),
                      "block '" + block.name + "': " + status.message());
      }
    }
  }
  return Status::OK();
}

namespace {

// Fast pre-filter: an apply-rooted pattern can only match an apply node
// with the same functor (functor variables match anything) and a
// compatible arity.
bool QuickReject(const term::TermRef& lhs, const term::TermRef& node) {
  if (!lhs->is_apply()) return false;
  if (!node->is_apply()) return true;
  const bool functor_var = lhs->functor().front() == '?';
  if (!functor_var && lhs->functor() != node->functor()) return true;
  bool has_coll_var = false;
  for (const TermRef& a : lhs->args()) {
    if (a->is_collection_variable()) {
      has_coll_var = true;
      break;
    }
  }
  if (!has_coll_var && lhs->arity() != node->arity()) return true;
  if (has_coll_var && node->arity() + 1 < lhs->arity()) return true;
  return false;
}

}  // namespace

term::TermRef Engine::TryRulesAt(const term::TermRef& node,
                                 const Scope& scope, const RuleBlock& block,
                                 const BlockIndex& index, int64_t* budget,
                                 RunState* state) const {
  (void)block;
  RewriteContext ctx;
  ctx.catalog = catalog_;
  if (scope.has_schemas) {
    const std::vector<lera::Schema>* schemas = &scope.input_schemas;
    const catalog::Catalog* cat = catalog_;
    lera::ExprTypeMemo* memo = &state->expr_memo;
    const uint64_t scope_key = scope.key;
    ctx.type_of = [schemas, cat, memo, scope_key](const TermRef& t) {
      return lera::InferExprType(t, *schemas, *cat, nullptr, nullptr, memo,
                                 scope_key);
    };
  }
  // One flag for "this candidate loop reads the clock": per-rule profiling
  // needs the attempt's self time, and the trace sink needs the fired
  // rule's span bounds. Off by default, making the whole observability
  // surface a single predictable branch per candidate.
  const bool timed = state->profile || state->sink != nullptr;
  for (const Rule* rule_ptr : index.Candidates(node)) {
    const Rule& rule = *rule_ptr;
    if (*budget == 0) return nullptr;
    // Governor chokepoint: rule-candidate consideration is the engine's
    // innermost loop, so deadline/cancellation latency is bounded by a few
    // candidate attempts (the guard amortizes its clock reads itself).
    if (state->guard != nullptr && state->guard->Check()) return nullptr;
    ++state->stats.match_attempts;
    uint64_t t0 = 0;
    RuleProfile* prof = nullptr;
    if (timed) {
      t0 = obs::NowNs();
      if (state->profile) {
        prof = &state->stats.rule_profiles[rule.name];
        ++prof->match_attempts;
      }
    }
    if (QuickReject(rule.lhs, node)) {
      ++state->stats.quick_rejects;
      if (prof != nullptr) {
        ++prof->quick_rejects;
        prof->ns += obs::NowNs() - t0;
      }
      continue;
    }
    // This is a rule-condition check: it burns budget (§4.2).
    ++state->stats.condition_checks;
    if (*budget > 0) --*budget;

    TermRef rewritten;
    Match(rule.lhs, node, term::Bindings(),
          [&](const term::Bindings& env) -> bool {
            // Constraints: all must evaluate to true; evaluation errors
            // reject this candidate binding.
            for (const TermRef& c : rule.constraints) {
              Result<bool> ok = EvalConstraint(c, env, ctx);
              if (!ok.ok() || !*ok) return false;
            }
            // Methods: run in order on a private copy of the bindings.
            term::Bindings work = env;
            for (const MethodCall& m : rule.methods) {
              Status s = builtins_->InvokeMethod(m.name, m.args, &work, ctx);
              if (!s.ok()) return false;
            }
            // Instantiate the right term and evaluate optimizer functions.
            Result<TermRef> rhs = term::ApplySubstitution(rule.rhs, work);
            if (!rhs.ok()) return false;
            Result<TermRef> final_rhs =
                EvalTermFunctions(*rhs, *builtins_, ctx);
            if (!final_rhs.ok()) return false;
            // No-op guard: a rewrite that reproduces the node exactly is
            // rejected, so idempotent rules cannot loop. With hash-consed
            // terms this is a pointer compare in the common case; Equals
            // keeps its deep fallback so value-equivalent replacements
            // (e.g. 2 -> 2.0) still count as no-ops, exactly as before.
            if (term::Equals(*final_rhs, node)) return false;
            rewritten = *final_rhs;
            return true;
          });
    if (rewritten != nullptr) {
      ++state->stats.applications;
      ++state->stats.applications_by_rule[rule.name];
      if (state->options->collect_trace) {
        state->trace.push_back(
            TraceEntry{*state->current_block, rule.name, node, rewritten});
      }
      if (timed) {
        const uint64_t t1 = obs::NowNs();
        if (prof != nullptr) {
          ++prof->applications;
          prof->ns += t1 - t0;
          prof->nodes_delta += static_cast<int64_t>(rewritten->node_count()) -
                               static_cast<int64_t>(node->node_count());
        }
        if (state->sink != nullptr) {
          state->sink->RecordComplete(
              rule.name, "rule", t0, t1,
              {{"block", *state->current_block},
               {"nodes_before", std::to_string(node->node_count())},
               {"nodes_after", std::to_string(rewritten->node_count())}});
        }
      }
      return rewritten;
    }
    if (prof != nullptr) prof->ns += obs::NowNs() - t0;
  }
  return nullptr;
}

term::TermRef Engine::TryOnce(const term::TermRef& node, const Scope& scope,
                              const RuleBlock& block, const BlockIndex& index,
                              int64_t* budget, RunState* state) const {
  if (*budget == 0 ||
      state->stats.applications >= state->options->max_applications) {
    return nullptr;
  }
  if (state->guard != nullptr && state->guard->tripped()) return nullptr;
  // Normal-form memo: this subtree was fully scanned under this scope
  // before (with budget to spare) and held no redex; it is unchanged —
  // nodes are immutable and canonical — so scanning it again is pointless.
  // Only subtrees above a size floor participate: rescanning a handful of
  // nodes costs less than the memo's own hashing and per-entry allocation,
  // and the floor keeps small-query rewrites (where the seed engine had
  // zero bookkeeping) at parity while deep plans still skip in O(1).
  const bool memoizable =
      node->is_apply() && node->node_count() >= kNfMemoMinNodes;
  const RunState::NfKey nf_key{node.get(), scope.key};
  if (memoizable && state->current_nf->count(nf_key) != 0) {
    ++state->stats.normal_form_hits;
    return nullptr;
  }
  if (TermRef r = TryRulesAt(node, scope, block, index, budget, state)) {
    return r;
  }
  if (!node->is_apply()) return nullptr;

  // Compute per-argument scopes for relational operators whose scalar
  // arguments carry ATTR references.
  const std::string& f = node->functor();
  auto schema_of = [this, state](
                       const TermRef& in) -> const Result<lera::Schema>& {
    auto it = state->schema_memo.find(in.get());
    if (it == state->schema_memo.end()) {
      // InferSchema fills the memo itself (including for subterms). A
      // governor trip inside leaves no entry; the static miss Result below
      // keeps the caller on its schema-free degradation path.
      lera::InferSchema(in, *catalog_, nullptr, &state->schema_memo,
                        state->guard);
      it = state->schema_memo.find(in.get());
      if (it == state->schema_memo.end()) {
        static const Result<lera::Schema> kTripped =
            Status::ResourceExhausted("schema inference aborted by governor");
        return kTripped;
      }
    }
    return it->second;
  };
  auto schemas_of_inputs =
      [&schema_of](
          const TermList& inputs) -> std::optional<std::vector<lera::Schema>> {
    std::vector<lera::Schema> out;
    out.reserve(inputs.size());
    for (const TermRef& in : inputs) {
      const Result<lera::Schema>& s = schema_of(in);
      if (!s.ok()) return std::nullopt;
      out.push_back(*s);
    }
    return out;
  };

  for (size_t i = 0; i < node->arity(); ++i) {
    Scope child_scope = scope;  // expressions inherit the enclosing scope
    bool is_scalar_position = false;
    if (f == lera::kSearch && node->arity() == 3 &&
        node->arg(0)->IsApply(term::kList)) {
      if (i == 0) {
        child_scope = Scope{};  // relational inputs: fresh scope
      } else {
        is_scalar_position = true;
        if (auto s = schemas_of_inputs(node->arg(0)->args())) {
          ScopeKeyBuilder kb;
          for (const TermRef& in : node->arg(0)->args()) kb.Add(in.get());
          child_scope = Scope{std::move(*s), true, kb.Done()};
        } else {
          child_scope = Scope{};
        }
      }
    } else if ((f == lera::kFilter || f == lera::kProject) &&
               node->arity() == 2) {
      if (i == 0) {
        child_scope = Scope{};
      } else {
        is_scalar_position = true;
        if (auto s = schemas_of_inputs({node->arg(0)})) {
          child_scope =
              Scope{std::move(*s), true,
                    ScopeKeyBuilder().Add(node->arg(0).get()).Done()};
        } else {
          child_scope = Scope{};
        }
      }
    } else if (f == lera::kJoin && node->arity() == 3) {
      if (i < 2) {
        child_scope = Scope{};
      } else {
        is_scalar_position = true;
        if (auto s = schemas_of_inputs({node->arg(0), node->arg(1)})) {
          child_scope = Scope{std::move(*s), true,
                              ScopeKeyBuilder()
                                  .Add(node->arg(0).get())
                                  .Add(node->arg(1).get())
                                  .Done()};
        } else {
          child_scope = Scope{};
        }
      }
    } else if (lera::IsRelationalOp(node)) {
      // Other relational operators (UNION, FIX, NEST, ...): children that
      // are relational start a fresh scope; constant arguments are skipped
      // by matching anyway.
      child_scope = Scope{};
    }
    (void)is_scalar_position;
    if (TermRef r = TryOnce(node->arg(i), child_scope, block, index, budget,
                            state)) {
      TermList args = node->args();
      args[i] = std::move(r);
      return Term::Apply(node->functor(), std::move(args));
    }
    if (*budget == 0) return nullptr;
  }
  // The whole subtree was scanned without truncation and no rule fired:
  // record it as being in normal form for this block under this scope.
  // (*budget != 0 distinguishes a completed scan from one that ran dry —
  // every budget-truncated path above returns before reaching here. A
  // governor trip also truncates the scan, so it must not certify.)
  if (memoizable && *budget != 0 &&
      (state->guard == nullptr || !state->guard->tripped())) {
    state->current_nf->insert(nf_key);
  }
  return nullptr;
}

Result<RewriteOutcome> Engine::Rewrite(const term::TermRef& query,
                                       const RewriteOptions& options) const {
  RunState state;
  state.options = &options;
  state.sink = options.trace_sink;
  state.profile = options.profile_rules;
  state.guard = options.guard;
  state.nf_memo.resize(program_.blocks.size());
  TermRef current = query;

  auto guard_tripped = [&state]() {
    return state.guard != nullptr && state.guard->tripped();
  };

  int64_t seq_remaining =
      program_.seq_limit < 0 ? kSaturate : program_.seq_limit;
  bool progressed = true;
  while (progressed && seq_remaining != 0 && !state.stats.safety_stop &&
         !guard_tripped()) {
    progressed = false;
    ++state.stats.passes;
    obs::Span pass_span(state.sink, "rewrite.pass", "rewrite");
    if (state.sink != nullptr) {
      pass_span.Arg("pass", static_cast<int64_t>(state.stats.passes));
    }
    for (size_t block_idx = 0; block_idx < program_.blocks.size();
         ++block_idx) {
      const RuleBlock& block = program_.blocks[block_idx];
      const BlockIndex& index = block_indexes_[block_idx];
      state.current_block = &block.name;
      obs::Span block_span(state.sink,
                           state.sink != nullptr
                               ? "rewrite.block " + block.name
                               : std::string(),
                           "rewrite");
      state.current_nf = &state.nf_memo[block_idx];
      int64_t budget = block.limit;
      if (options.budget_per_node > 0 && budget != kSaturate) {
        budget = static_cast<int64_t>(
            options.budget_per_node *
            static_cast<double>(term::CountNodes(query)));
      }
      // Apply the block's rules until saturation, budget exhaustion, or a
      // cycle: oscillating rule pairs (A -> B -> A) would otherwise burn
      // the whole budget re-deriving the same terms — the §7 pathology.
      // Hash-consing makes pointer identity coincide with structural
      // identity for live terms (all of `seen` is pinned via `retained`),
      // so the guard compares pointers: no deep re-hash of the whole query
      // per step, and no false stop on a 64-bit hash collision.
      std::unordered_set<const term::Term*> seen;
      seen.insert(current.get());
      while (true) {
        if (state.stats.applications >= options.max_applications) {
          state.stats.safety_stop = true;
          break;
        }
        // Block-boundary governor check: catches trips even when every
        // candidate quick-rejects (the inner-loop check amortizes, this
        // one backstops it between restarts).
        if (state.guard != nullptr && state.guard->Check()) break;
        Scope root_scope;
        TermRef next =
            TryOnce(current, root_scope, block, index, &budget, &state);
        if (next == nullptr) break;
        bool fresh = seen.insert(next.get()).second;
        state.retained.push_back(current);  // pin for the memos and `seen`
        current = std::move(next);
        progressed = true;
        if (!fresh) {
          ++state.stats.cycle_stops;
          break;
        }
        if (budget == 0) break;
      }
      if (state.stats.safety_stop || guard_tripped()) break;
    }
    if (seq_remaining > 0) --seq_remaining;
  }

  if (guard_tripped()) {
    // Graceful degradation: stop optimizing, keep the best plan reached.
    // Every applied rule preserved semantics, so `current` is correct —
    // the trip only means it may be less optimized than the fixpoint.
    state.stats.trip = state.guard->trip();
    if (state.sink != nullptr) {
      const uint64_t now = obs::NowNs();
      state.sink->RecordComplete(
          "gov.trip", "gov", now, now,
          {{"kind", gov::TripKindName(state.stats.trip.kind)},
           {"detail", state.stats.trip.detail}});
    }
  }

  state.stats.expr_type_hits = state.expr_memo.hits();
  state.stats.expr_type_misses = state.expr_memo.misses();

  RewriteOutcome outcome;
  outcome.term = std::move(current);
  outcome.stats = std::move(state.stats);
  outcome.trace = std::move(state.trace);
  return outcome;
}

}  // namespace eds::rewrite
