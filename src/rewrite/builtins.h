#ifndef EDS_REWRITE_BUILTINS_H_
#define EDS_REWRITE_BUILTINS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "term/substitution.h"
#include "term/term.h"
#include "types/type.h"

namespace eds::rewrite {

// Context a rule application runs in: the paper's "a rule has a context,
// which is the query and the database on which it is applied". The engine
// fills `type_of` with a scope-aware oracle while traversing qualification /
// projection positions (ATTR references resolve against the enclosing
// operator's input schemas).
struct RewriteContext {
  const catalog::Catalog* catalog = nullptr;

  // Resolves the ESQL type of an expression term in the current scope.
  // Null when no scope information is available.
  std::function<Result<types::TypeRef>(const term::TermRef&)> type_of;
};

// A method (rule action): reads its raw argument terms (as written in the
// rule), consults/extends the bindings, and binds output variables.
using MethodFn = std::function<Status(
    const term::TermList& args, term::Bindings* env, const RewriteContext&)>;

// An optimizer term function, evaluated while building the right term
// (e.g. APPEND splices LIST arguments, SET_UNION splices SET arguments).
using TermFn = std::function<Result<term::TermRef>(const term::TermList& args,
                                                   const RewriteContext&)>;

// Registry of methods and term functions. The database implementor extends
// the rewriter by registering C++ callables here, mirroring the paper's
// "external functions should be defined in the ADT function library".
class BuiltinRegistry {
 public:
  BuiltinRegistry() = default;
  BuiltinRegistry(const BuiltinRegistry&) = delete;
  BuiltinRegistry& operator=(const BuiltinRegistry&) = delete;

  Status RegisterMethod(const std::string& name, MethodFn fn);
  Status RegisterTermFunction(const std::string& name, TermFn fn);
  bool HasMethod(const std::string& name) const;
  bool HasTermFunction(const std::string& name) const;

  Status InvokeMethod(const std::string& name, const term::TermList& args,
                      term::Bindings* env, const RewriteContext& ctx) const;
  // Returns nullopt if `name` is not a term function.
  std::optional<Result<term::TermRef>> InvokeTermFunction(
      const std::string& name, const term::TermList& args,
      const RewriteContext& ctx) const;

  // Installs the standard builtins:
  //   methods   EVALUATE(expr, out)    constant-fold expr, bind out
  //             SCHEMA(rel, out)       out := the identity projection over
  //                                    rel's schema ($1.1..$1.n); a LIST of
  //                                    relations spans all of them
  //             POSITION(x*, out)      out := |x*| + 1, the input position
  //                                    following the inputs x* absorbed
  //             MERGE_SUBST(e, x*, v*, z, b, out)
  //                                    remap e's ATTR refs through the
  //                                    inner projection b for the search-
  //                                    merging rule (Fig. 7)
  //             SHIFT_ATTRS(e, x*, v*, out)
  //                                    shift e's input indices by |x*|+|v*|
  //                                    (the inner qualification's side of
  //                                    the same merge)
  //             SPLIT_QUAL(f, pos, z, nested_cols, pushed, kept)
  //                                    split f's conjuncts into the part
  //                                    pushable below a NEST/set-op input
  //                                    at `pos` (renumbered to z's own
  //                                    columns) and the rest; fails when
  //                                    nothing is pushable (Fig. 8's REFER)
  //   term fns  APPEND(...)            splice LIST arguments into one LIST
  //             SET_UNION(...)         splice SET arguments into one SET
  // (ADORNMENT and ALEXANDER are installed by magic/InstallMagicBuiltins;
  // CLOSE_PREDICATES and SIMPLIFY_QUAL by rules/InstallSemanticBuiltins.)
  void InstallStandard();

 private:
  std::map<std::string, MethodFn> methods_;
  std::map<std::string, TermFn> term_fns_;
};

// Evaluates one rule constraint under `env`. Handles (per §4.1):
//   * AND / OR / NOT combinations;
//   * ISA(x, T): T names a type (catalog lookup), a collection kind
//     (SET/BAG/LIST/ARRAY/COLLECTION), or the pseudo-type CONSTANT. The
//     type of x comes from ctx.type_of (scope-aware) with a syntactic
//     fallback (literal SET(...) terms, constants);
//   * MEMBER(t, c): when c is (or is bound to) a term-level collection,
//     structural membership; when evaluable to values, value membership;
//   * REFERS_ONLY(qual, i, cols) / NOREF(qual, i): ATTR-reference checks
//     used by the permutation rules (the paper's REFER);
//   * comparison functors: evaluated over values when both sides constant-
//     fold, otherwise structural equality for EQ/NE;
//   * any ground boolean term: evaluated through the catalog's function
//     library.
// An error means the constraint could not be evaluated (the engine treats
// it as "rule not applicable" and records it in the trace).
Result<bool> EvalConstraint(const term::TermRef& constraint,
                            const term::Bindings& env,
                            const RewriteContext& ctx);

// Constant-folds `t` to a runtime value if possible: constants, SET/LIST/
// BAG/TUPLE literals of foldable elements, and registered pure functions of
// foldable arguments. Returns nullopt when not foldable.
std::optional<value::Value> TryEvalToValue(const term::TermRef& t,
                                           const RewriteContext& ctx);

// Bottom-up pass replacing registered term functions (APPEND, SET_UNION)
// in an instantiated right term.
Result<term::TermRef> EvalTermFunctions(const term::TermRef& t,
                                        const BuiltinRegistry& builtins,
                                        const RewriteContext& ctx);

// Converts a runtime value back to a constant/literal term (inverse of
// TryEvalToValue for the kinds EVALUATE can produce).
term::TermRef ValueToTerm(const value::Value& v);

}  // namespace eds::rewrite

#endif  // EDS_REWRITE_BUILTINS_H_
