#ifndef EDS_REWRITE_MATCH_H_
#define EDS_REWRITE_MATCH_H_

#include <functional>

#include "term/substitution.h"
#include "term/term.h"

namespace eds::rewrite {

// Callback invoked for each way `pattern` matches `subject`. Return true to
// accept the match and stop the search, false to keep enumerating
// alternatives (the engine uses this to backtrack when a rule's constraints
// reject a candidate binding).
using MatchCallback = std::function<bool(const term::Bindings&)>;

// Matches `pattern` (which may contain variables and collection variables)
// against the ground term `subject`, extending `seed`. Enumerates bindings:
//
//   * ordinary functors and LIST match argument sequences in order;
//     collection variables absorb subsequences, with backtracking over all
//     split points;
//   * SET patterns match modulo permutation of the subject's elements
//     (bounded backtracking over assignments); at most one collection
//     variable is supported per SET pattern and it absorbs the leftovers —
//     the paper's rules never need more;
//   * a variable matches any term (consistently across occurrences);
//   * constants match equal constants.
//
// Returns true if the callback accepted some match.
bool Match(const term::TermRef& pattern, const term::TermRef& subject,
           const term::Bindings& seed, const MatchCallback& on_match);

// Convenience: first match or nothing.
bool MatchFirst(const term::TermRef& pattern, const term::TermRef& subject,
                term::Bindings* out);

}  // namespace eds::rewrite

#endif  // EDS_REWRITE_MATCH_H_
