#include "rewrite/match.h"

#include <algorithm>

namespace eds::rewrite {

using term::Bindings;
using term::TermList;
using term::TermRef;

namespace {

// Continuation style: each helper enumerates ways to match its slice and
// calls `cont` with the extended environment; a `true` return means the
// continuation accepted and enumeration must stop.
using Cont = std::function<bool(const Bindings&)>;

bool MatchNode(const TermRef& pattern, const TermRef& subject,
               const Bindings& env, const Cont& cont);

// Ordered sequence matching (LIST and plain functor argument lists) with
// collection variables absorbing subsequences.
bool MatchSeq(const TermList& pats, size_t pi, const TermList& subs,
              size_t si, const Bindings& env, const Cont& cont) {
  if (pi == pats.size()) {
    return si == subs.size() ? cont(env) : false;
  }
  const TermRef& p = pats[pi];
  if (p->is_collection_variable()) {
    if (const TermList* bound = env.LookupCollVar(p->var_name())) {
      // Already bound: must be a prefix of the remaining subjects.
      if (si + bound->size() > subs.size()) return false;
      for (size_t k = 0; k < bound->size(); ++k) {
        if (!term::Equals((*bound)[k], subs[si + k])) return false;
      }
      return MatchSeq(pats, pi + 1, subs, si + bound->size(), env, cont);
    }
    // Try all split points, shortest absorption first.
    for (size_t take = 0; take + si <= subs.size(); ++take) {
      Bindings next = env;
      next.SetCollVar(p->var_name(),
                      TermList(subs.begin() + si, subs.begin() + si + take));
      if (MatchSeq(pats, pi + 1, subs, si + take, next, cont)) return true;
    }
    return false;
  }
  if (si >= subs.size()) return false;
  return MatchNode(p, subs[si], env, [&](const Bindings& env2) {
    return MatchSeq(pats, pi + 1, subs, si + 1, env2, cont);
  });
}

// SET patterns: concrete sub-patterns each claim a distinct subject element
// (any position); at most one collection variable absorbs the leftovers.
bool MatchSetAssign(const std::vector<TermRef>& concrete, size_t ci,
                    const TermList& subs, std::vector<bool>& used,
                    const TermRef& coll_var, const Bindings& env,
                    const Cont& cont) {
  if (ci == concrete.size()) {
    TermList leftovers;
    for (size_t i = 0; i < subs.size(); ++i) {
      if (!used[i]) leftovers.push_back(subs[i]);
    }
    if (coll_var == nullptr) {
      if (!leftovers.empty()) return false;
      return cont(env);
    }
    if (const TermList* bound = env.LookupCollVar(coll_var->var_name())) {
      // Compare as multisets: sort both by structural order.
      if (bound->size() != leftovers.size()) return false;
      TermList a = *bound, b = leftovers;
      auto lt = [](const TermRef& x, const TermRef& y) {
        return term::Compare(x, y) < 0;
      };
      std::sort(a.begin(), a.end(), lt);
      std::sort(b.begin(), b.end(), lt);
      for (size_t i = 0; i < a.size(); ++i) {
        if (!term::Equals(a[i], b[i])) return false;
      }
      return cont(env);
    }
    Bindings next = env;
    next.SetCollVar(coll_var->var_name(), std::move(leftovers));
    return cont(next);
  }
  for (size_t i = 0; i < subs.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    bool accepted = MatchNode(concrete[ci], subs[i], env,
                              [&](const Bindings& env2) {
                                return MatchSetAssign(concrete, ci + 1, subs,
                                                      used, coll_var, env2,
                                                      cont);
                              });
    used[i] = false;
    if (accepted) return true;
  }
  return false;
}

bool MatchSet(const TermList& pats, const TermList& subs, const Bindings& env,
              const Cont& cont) {
  std::vector<TermRef> concrete;
  TermRef coll_var;
  for (const TermRef& p : pats) {
    if (p->is_collection_variable()) {
      if (coll_var != nullptr) return false;  // at most one per SET pattern
      coll_var = p;
    } else {
      concrete.push_back(p);
    }
  }
  if (concrete.size() > subs.size()) return false;
  std::vector<bool> used(subs.size(), false);
  return MatchSetAssign(concrete, 0, subs, used, coll_var, env, cont);
}

bool MatchNode(const TermRef& pattern, const TermRef& subject,
               const Bindings& env, const Cont& cont) {
  // Canonical-identity fast path: a pattern with no variables of any kind
  // matches exactly its own (pointer-identical) canonical term, binding
  // nothing. Accept-only — a pointer mismatch proves nothing, since e.g.
  // SET patterns match modulo permutation.
  if (pattern.get() == subject.get() && pattern->pattern_free()) {
    return cont(env);
  }
  switch (pattern->kind()) {
    case term::TermKind::kConstant:
      if (subject->is_constant() &&
          value::Compare(pattern->constant(), subject->constant()) == 0) {
        return cont(env);
      }
      return false;
    case term::TermKind::kVariable: {
      Bindings next = env;
      if (!next.BindVar(pattern->var_name(), subject)) return false;
      return cont(next);
    }
    case term::TermKind::kCollectionVariable:
      // Only legal inside an argument list; a bare collection-variable
      // pattern cannot match a single term.
      return false;
    case term::TermKind::kApply: {
      if (!subject->is_apply()) return false;
      // Functor variables (?F) match any application and bind the functor
      // name; argument lists still match positionally.
      if (pattern->functor().front() == '?') {
        Bindings next = env;
        if (!next.BindVar(pattern->functor(),
                          term::Term::Str(subject->functor()))) {
          return false;
        }
        return MatchSeq(pattern->args(), 0, subject->args(), 0, next, cont);
      }
      if (subject->functor() != pattern->functor()) return false;
      if (pattern->functor() == term::kSet) {
        return MatchSet(pattern->args(), subject->args(), env, cont);
      }
      return MatchSeq(pattern->args(), 0, subject->args(), 0, env, cont);
    }
  }
  return false;
}

}  // namespace

bool Match(const term::TermRef& pattern, const term::TermRef& subject,
           const term::Bindings& seed, const MatchCallback& on_match) {
  return MatchNode(pattern, subject, seed, on_match);
}

bool MatchFirst(const term::TermRef& pattern, const term::TermRef& subject,
                term::Bindings* out) {
  return Match(pattern, subject, term::Bindings(),
               [out](const term::Bindings& env) {
                 if (out != nullptr) *out = env;
                 return true;
               });
}

}  // namespace eds::rewrite
