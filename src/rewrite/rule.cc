#include "rewrite/rule.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "rewrite/builtins.h"

namespace eds::rewrite {

std::string SourceLoc::ToString() const {
  if (!known()) return "";
  return "line " + std::to_string(line) + ":" + std::to_string(column);
}

std::string Rule::Describe() const {
  std::string out = "rule '" + name + "'";
  if (loc.known()) out += " (" + loc.ToString() + ")";
  return out;
}

std::string MethodCall::ToString() const {
  std::ostringstream os;
  os << name << '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i];
  }
  os << ')';
  return os.str();
}

std::string Rule::ToString() const {
  std::ostringstream os;
  if (!name.empty()) os << name << ": ";
  os << lhs << " / ";
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (i > 0) os << ", ";
    os << constraints[i];
  }
  os << " --> " << rhs << " / ";
  for (size_t i = 0; i < methods.size(); ++i) {
    if (i > 0) os << ", ";
    os << methods[i].ToString();
  }
  return os.str();
}

namespace {

// Checks that every SET pattern node carries at most one collection
// variable (the matcher's documented restriction).
Status CheckSetPatterns(const term::TermRef& t) {
  if (!t->is_apply()) return Status::OK();
  if (t->functor() == term::kSet) {
    int coll_vars = 0;
    for (const auto& a : t->args()) {
      if (a->is_collection_variable()) ++coll_vars;
    }
    if (coll_vars > 1) {
      return Status::InvalidArgument(
          "SET pattern with more than one collection variable: " +
          t->ToString());
    }
  }
  for (const auto& a : t->args()) {
    EDS_RETURN_IF_ERROR(CheckSetPatterns(a));
  }
  return Status::OK();
}

bool Contains(const std::vector<std::string>& xs, const std::string& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

}  // namespace

Status ValidateRule(const Rule& rule, const BuiltinRegistry& builtins) {
  if (rule.lhs == nullptr || rule.rhs == nullptr) {
    return Status::InvalidArgument(rule.Describe() + " missing lhs or rhs");
  }
  EDS_RETURN_IF_ERROR(CheckSetPatterns(rule.lhs));

  std::vector<std::string> lhs_vars, lhs_coll_vars;
  term::CollectVariables(rule.lhs, &lhs_vars, &lhs_coll_vars);

  // Variables a method call may bind: any variable appearing in its args
  // that is not already bound (outputs by convention).
  std::vector<std::string> bindable = lhs_vars;
  std::vector<std::string> bindable_coll = lhs_coll_vars;
  for (const MethodCall& m : rule.methods) {
    if (!builtins.HasMethod(m.name)) {
      return Status::NotFound(rule.Describe() + " uses unknown method '" +
                              m.name + "'");
    }
    for (const term::TermRef& a : m.args) {
      term::CollectVariables(a, &bindable, &bindable_coll);
    }
  }

  // Constraint variables must come from the lhs. ISA's second argument is a
  // type name, not a variable — skip it at any nesting depth (constraints
  // may combine ISA checks with AND/OR/NOT, Fig. 11).
  std::function<void(const term::TermRef&, std::vector<std::string>*,
                     std::vector<std::string>*)>
      collect_constraint_vars = [&](const term::TermRef& t,
                                    std::vector<std::string>* vars,
                                    std::vector<std::string>* coll_vars) {
        if (t->IsApply("ISA", 2)) {
          term::CollectVariables(t->arg(0), vars, coll_vars);
          return;
        }
        if (t->is_apply()) {
          if (!t->functor().empty() && t->functor().front() == '?') {
            term::CollectVariables(t, vars, coll_vars);
            return;
          }
          for (const term::TermRef& a : t->args()) {
            collect_constraint_vars(a, vars, coll_vars);
          }
          return;
        }
        term::CollectVariables(t, vars, coll_vars);
      };
  for (const term::TermRef& c : rule.constraints) {
    std::vector<std::string> cv, ccv;
    collect_constraint_vars(c, &cv, &ccv);
    for (const std::string& v : cv) {
      if (!Contains(lhs_vars, v)) {
        return Status::InvalidArgument(rule.Describe() +
                                       ": constraint variable '" + v +
                                       "' not bound by the left term");
      }
    }
    for (const std::string& v : ccv) {
      if (!Contains(lhs_coll_vars, v)) {
        return Status::InvalidArgument(rule.Describe() +
                                       ": constraint collection variable '" +
                                       v + "*' not bound by the left term");
      }
    }
  }

  // RHS variables must be bound by the lhs or bindable by a method.
  std::vector<std::string> rhs_vars, rhs_coll_vars;
  term::CollectVariables(rule.rhs, &rhs_vars, &rhs_coll_vars);
  for (const std::string& v : rhs_vars) {
    if (!Contains(bindable, v)) {
      return Status::InvalidArgument(rule.Describe() +
                                     ": right-term variable '" + v +
                                     "' is never bound");
    }
  }
  for (const std::string& v : rhs_coll_vars) {
    if (!Contains(bindable_coll, v)) {
      return Status::InvalidArgument(rule.Describe() +
                                     ": right-term collection variable '" +
                                     v + "*' is never bound");
    }
  }
  return Status::OK();
}

}  // namespace eds::rewrite
