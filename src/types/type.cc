#include "types/type.h"

#include "common/strings.h"

namespace eds::types {

namespace {

// Grants access to Type's private constructor for the factories.
struct TypeBuilder : Type {};

std::shared_ptr<Type> NewType() { return std::make_shared<TypeBuilder>(); }

}  // namespace

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kAny: return "ANY";
    case TypeKind::kBool: return "BOOLEAN";
    case TypeKind::kInt: return "INT";
    case TypeKind::kReal: return "REAL";
    case TypeKind::kNumeric: return "NUMERIC";
    case TypeKind::kChar: return "CHAR";
    case TypeKind::kEnumeration: return "ENUMERATION";
    case TypeKind::kTuple: return "TUPLE";
    case TypeKind::kCollection: return "COLLECTION";
    case TypeKind::kSet: return "SET";
    case TypeKind::kBag: return "BAG";
    case TypeKind::kList: return "LIST";
    case TypeKind::kArray: return "ARRAY";
    case TypeKind::kObject: return "OBJECT";
  }
  return "?";
}

bool Type::is_collection() const {
  switch (kind_) {
    case TypeKind::kCollection:
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray:
      return true;
    default:
      return false;
  }
}

bool Type::is_numeric() const {
  return kind_ == TypeKind::kInt || kind_ == TypeKind::kReal ||
         kind_ == TypeKind::kNumeric;
}

const Field* Type::FindField(const std::string& name) const {
  for (const Field& f : fields_) {
    if (EqualsIgnoreCase(f.name, name)) return &f;
  }
  if (supertype_ != nullptr) return supertype_->FindField(name);
  return nullptr;
}

std::string Type::ToString() const {
  // Named types print as their name so they compose in DDL positions
  // (SET OF Category, Origin : Point, ...).
  if (!name_.empty()) return name_;
  switch (kind_) {
    case TypeKind::kTuple: {
      std::string out = "TUPLE (";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].name + " : " + fields_[i].type->ToString();
      }
      return out + ")";
    }
    case TypeKind::kEnumeration: {
      std::string out =
          name_.empty() ? "ENUMERATION OF (" : name_ + " ENUMERATION OF (";
      for (size_t i = 0; i < enum_values_.size(); ++i) {
        if (i > 0) out += ", ";
        out += "'" + enum_values_[i] + "'";
      }
      return out + ")";
    }
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray:
    case TypeKind::kCollection: {
      std::string out = TypeKindName(kind_);
      if (element_ != nullptr) {
        out += " OF ";
        out += element_->ToString();
      }
      return out;
    }
    default:
      return TypeKindName(kind_);
  }
}

TypeRef Type::MakeScalar(TypeKind kind) {
  auto t = NewType();
  t->kind_ = kind;
  t->name_ = TypeKindName(kind);
  return t;
}

TypeRef Type::MakeCollection(TypeKind kind, TypeRef element) {
  auto t = NewType();
  t->kind_ = kind;
  t->element_ = std::move(element);
  return t;
}

TypeRef Type::MakeTuple(std::vector<Field> fields) {
  auto t = NewType();
  t->kind_ = TypeKind::kTuple;
  t->fields_ = std::move(fields);
  return t;
}

TypeRef Type::MakeEnumeration(std::string name,
                              std::vector<std::string> values) {
  auto t = NewType();
  t->kind_ = TypeKind::kEnumeration;
  t->name_ = std::move(name);
  t->enum_values_ = std::move(values);
  return t;
}

TypeRef Type::MakeObject(std::string name, std::vector<Field> fields,
                         TypeRef supertype) {
  auto t = NewType();
  t->kind_ = TypeKind::kObject;
  t->name_ = std::move(name);
  t->fields_ = std::move(fields);
  t->supertype_ = std::move(supertype);
  return t;
}

TypeRef Type::MakeNamed(std::string name, const TypeRef& aliased) {
  auto t = NewType();
  t->kind_ = aliased->kind_;
  t->name_ = std::move(name);
  t->element_ = aliased->element_;
  t->fields_ = aliased->fields_;
  t->enum_values_ = aliased->enum_values_;
  t->supertype_ = aliased->supertype_;
  return t;
}

namespace {

bool SameFields(const std::vector<Field>& a, const std::vector<Field>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!EqualsIgnoreCase(a[i].name, b[i].name)) return false;
    if (!SameType(a[i].type, b[i].type)) return false;
  }
  return true;
}

}  // namespace

bool SameType(const TypeRef& a, const TypeRef& b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TypeKind::kObject:
    case TypeKind::kEnumeration:
      // Nominal identity: objects and enums are equal only by name.
      return EqualsIgnoreCase(a->name(), b->name());
    case TypeKind::kTuple:
      return SameFields(a->fields(), b->fields());
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray:
    case TypeKind::kCollection:
      if (a->element() == nullptr || b->element() == nullptr) {
        return a->element() == b->element();
      }
      return SameType(a->element(), b->element());
    default:
      return true;  // scalars of equal kind
  }
}

bool Isa(const TypeRef& sub, const TypeRef& super) {
  if (sub == nullptr || super == nullptr) return false;
  if (super->kind() == TypeKind::kAny) return true;
  if (SameType(sub, super)) return true;

  switch (sub->kind()) {
    case TypeKind::kInt:
      return super->kind() == TypeKind::kReal ||
             super->kind() == TypeKind::kNumeric;
    case TypeKind::kReal:
      return super->kind() == TypeKind::kNumeric;
    case TypeKind::kEnumeration:
      // Enumeration literals are character strings.
      return super->kind() == TypeKind::kChar;
    case TypeKind::kSet:
    case TypeKind::kBag:
    case TypeKind::kList:
    case TypeKind::kArray:
    case TypeKind::kCollection: {
      const bool kind_ok =
          super->kind() == sub->kind() ||
          super->kind() == TypeKind::kCollection;
      if (!kind_ok) return false;
      // COLLECTION with no element constraint accepts any element type.
      if (super->element() == nullptr) return true;
      if (sub->element() == nullptr) return false;
      return Isa(sub->element(), super->element());
    }
    case TypeKind::kObject: {
      // Walk the declared supertype chain.
      for (TypeRef t = sub->supertype(); t != nullptr; t = t->supertype()) {
        if (SameType(t, super)) return true;
      }
      return false;
    }
    case TypeKind::kTuple: {
      if (super->kind() != TypeKind::kTuple) return false;
      // Width subtyping: a tuple with extra trailing fields is a subtype.
      const auto& sf = sub->fields();
      const auto& pf = super->fields();
      if (sf.size() < pf.size()) return false;
      for (size_t i = 0; i < pf.size(); ++i) {
        if (!EqualsIgnoreCase(sf[i].name, pf[i].name)) return false;
        if (!Isa(sf[i].type, pf[i].type)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace eds::types
