#ifndef EDS_TYPES_REGISTRY_H_
#define EDS_TYPES_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/type.h"

namespace eds::types {

// Registry of named types, the "extensible typing" half of the paper's ADT
// story. Builtin scalar types (INT, REAL, NUMERIC, BOOLEAN, CHAR) and the
// abstract COLLECTION root are pre-registered. User DDL (TYPE ...) adds
// enumerations, named tuples/collections, and object types with subtyping.
// Lookup is case-insensitive.
class TypeRegistry {
 public:
  TypeRegistry();

  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // Looks up a named type. NotFound if absent.
  Result<TypeRef> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  // TYPE <name> ENUMERATION OF ('a', ...).
  Result<TypeRef> RegisterEnumeration(const std::string& name,
                                      std::vector<std::string> values);

  // TYPE <name> TUPLE (f : T, ...).
  Result<TypeRef> RegisterTuple(const std::string& name,
                                std::vector<Field> fields);

  // TYPE <name> OBJECT TUPLE (f : T, ...) [SUBTYPE OF <super>]. `supertype`
  // may be null. Inherited fields are *not* copied; FindField walks the
  // chain.
  Result<TypeRef> RegisterObject(const std::string& name,
                                 std::vector<Field> fields,
                                 const TypeRef& supertype);

  // TYPE <name> <structural type>, e.g. TYPE Text LIST OF CHAR.
  Result<TypeRef> RegisterAlias(const std::string& name, const TypeRef& type);

  // Convenience accessors for the ubiquitous builtins.
  const TypeRef& bool_type() const { return bool_type_; }
  const TypeRef& int_type() const { return int_type_; }
  const TypeRef& real_type() const { return real_type_; }
  const TypeRef& numeric_type() const { return numeric_type_; }
  const TypeRef& char_type() const { return char_type_; }
  const TypeRef& any_type() const { return any_type_; }
  const TypeRef& collection_type() const { return collection_type_; }

  // All registered names, sorted (for catalogs / diagnostics).
  std::vector<std::string> Names() const;

  // User-registered type names in registration order (builtins excluded);
  // dependency-safe for DDL dumps since ESQL requires definition before
  // use.
  const std::vector<std::string>& UserTypeNames() const {
    return user_order_;
  }

  // Replaces this registry's contents with a copy of `other`'s. TypeRef is
  // shared_ptr<const Type>, so the clone shares the immutable type nodes —
  // including the builtin members, which keeps pointer identity consistent
  // between a catalog and its serving-snapshot clones.
  void CloneFrom(const TypeRegistry& other) {
    by_name_ = other.by_name_;
    user_order_ = other.user_order_;
    bool_type_ = other.bool_type_;
    int_type_ = other.int_type_;
    real_type_ = other.real_type_;
    numeric_type_ = other.numeric_type_;
    char_type_ = other.char_type_;
    any_type_ = other.any_type_;
    collection_type_ = other.collection_type_;
  }

 private:
  Status Insert(const std::string& name, const TypeRef& type);

  std::map<std::string, TypeRef> by_name_;  // keys folded to upper case
  std::vector<std::string> user_order_;      // declared names, in order

  TypeRef bool_type_;
  TypeRef int_type_;
  TypeRef real_type_;
  TypeRef numeric_type_;
  TypeRef char_type_;
  TypeRef any_type_;
  TypeRef collection_type_;
};

}  // namespace eds::types

#endif  // EDS_TYPES_REGISTRY_H_
