#include "types/registry.h"

#include "common/strings.h"

namespace eds::types {

TypeRegistry::TypeRegistry() {
  bool_type_ = Type::MakeScalar(TypeKind::kBool);
  int_type_ = Type::MakeScalar(TypeKind::kInt);
  real_type_ = Type::MakeScalar(TypeKind::kReal);
  numeric_type_ = Type::MakeScalar(TypeKind::kNumeric);
  char_type_ = Type::MakeScalar(TypeKind::kChar);
  any_type_ = Type::MakeScalar(TypeKind::kAny);
  collection_type_ = Type::MakeCollection(TypeKind::kCollection, nullptr);

  // Builtins never collide at construction time; ignore the statuses.
  (void)Insert("BOOLEAN", bool_type_);
  (void)Insert("BOOL", bool_type_);
  (void)Insert("INT", int_type_);
  (void)Insert("INTEGER", int_type_);
  (void)Insert("REAL", real_type_);
  (void)Insert("NUMERIC", numeric_type_);
  (void)Insert("CHAR", char_type_);
  (void)Insert("ANY", any_type_);
  (void)Insert("COLLECTION", collection_type_);
}

Status TypeRegistry::Insert(const std::string& name, const TypeRef& type) {
  auto [it, inserted] = by_name_.emplace(ToUpperAscii(name), type);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("type '" + name + "' already defined");
  }
  return Status::OK();
}

Result<TypeRef> TypeRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(ToUpperAscii(name));
  if (it == by_name_.end()) {
    return Status::NotFound("unknown type '" + name + "'");
  }
  return it->second;
}

bool TypeRegistry::Contains(const std::string& name) const {
  return by_name_.count(ToUpperAscii(name)) > 0;
}

Result<TypeRef> TypeRegistry::RegisterEnumeration(
    const std::string& name, std::vector<std::string> values) {
  if (values.empty()) {
    return Status::InvalidArgument("enumeration '" + name + "' has no values");
  }
  TypeRef t = Type::MakeEnumeration(name, std::move(values));
  EDS_RETURN_IF_ERROR(Insert(name, t));
  user_order_.push_back(name);
  return t;
}

Result<TypeRef> TypeRegistry::RegisterTuple(const std::string& name,
                                            std::vector<Field> fields) {
  TypeRef t = Type::MakeNamed(name, Type::MakeTuple(std::move(fields)));
  EDS_RETURN_IF_ERROR(Insert(name, t));
  user_order_.push_back(name);
  return t;
}

Result<TypeRef> TypeRegistry::RegisterObject(const std::string& name,
                                             std::vector<Field> fields,
                                             const TypeRef& supertype) {
  if (supertype != nullptr && supertype->kind() != TypeKind::kObject) {
    return Status::TypeError("SUBTYPE OF requires an object type, got " +
                             supertype->ToString());
  }
  TypeRef t = Type::MakeObject(name, std::move(fields), supertype);
  EDS_RETURN_IF_ERROR(Insert(name, t));
  user_order_.push_back(name);
  return t;
}

Result<TypeRef> TypeRegistry::RegisterAlias(const std::string& name,
                                            const TypeRef& type) {
  TypeRef t = Type::MakeNamed(name, type);
  EDS_RETURN_IF_ERROR(Insert(name, t));
  user_order_.push_back(name);
  return t;
}

std::vector<std::string> TypeRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, type] : by_name_) out.push_back(name);
  return out;
}

}  // namespace eds::types
