#ifndef EDS_TYPES_TYPE_H_
#define EDS_TYPES_TYPE_H_

#include <memory>
#include <string>
#include <vector>

namespace eds::types {

class Type;
using TypeRef = std::shared_ptr<const Type>;

// Kinds of ESQL types. The generic collection ADTs (set, bag, list, array)
// form an inheritance hierarchy rooted at kCollection, exactly as in Fig. 1
// of the paper. Object types carry identity; everything else is a value type.
enum class TypeKind {
  kAny,          // top of the value lattice; used for untyped rule variables
  kBool,
  kInt,
  kReal,
  kNumeric,      // supertype of kInt and kReal (ESQL NUMERIC)
  kChar,         // character string (ESQL CHAR)
  kEnumeration,  // ENUMERATION OF ('a', 'b', ...)
  kTuple,        // TUPLE (name : type, ...)
  kCollection,   // abstract root of the collection hierarchy
  kSet,
  kBag,
  kList,
  kArray,
  kObject,       // OBJECT TUPLE (...) possibly SUBTYPE OF another object type
};

const char* TypeKindName(TypeKind kind);

// One attribute of a tuple or object type.
struct Field {
  std::string name;
  TypeRef type;
};

// Immutable description of an ESQL type. Types are built through
// TypeRegistry (named user types) or the Make* factories (anonymous
// structural types) and shared by TypeRef.
class Type {
 public:
  TypeKind kind() const { return kind_; }

  // Non-empty for named user types (e.g. "Actor", "Text") and builtin
  // scalars ("INT"); empty for anonymous structural types.
  const std::string& name() const { return name_; }

  // Collections: the element type. Null otherwise.
  const TypeRef& element() const { return element_; }

  // Tuples and object types: the attributes.
  const std::vector<Field>& fields() const { return fields_; }

  // Enumerations: the allowed literals, in declaration order.
  const std::vector<std::string>& enum_values() const { return enum_values_; }

  // Object types: the declared supertype (null for roots).
  const TypeRef& supertype() const { return supertype_; }

  bool is_collection() const;
  bool is_numeric() const;
  bool is_object() const { return kind_ == TypeKind::kObject; }

  // Finds a field by name (case-insensitive, as ESQL identifiers are),
  // searching the supertype chain for object types. Returns nullptr if
  // absent.
  const Field* FindField(const std::string& name) const;

  // Human-readable form: "SET OF TUPLE (Pros : INT, Cons : INT)".
  std::string ToString() const;

  // ---- factories for anonymous structural types ----
  static TypeRef MakeScalar(TypeKind kind);
  static TypeRef MakeCollection(TypeKind kind, TypeRef element);
  static TypeRef MakeTuple(std::vector<Field> fields);
  static TypeRef MakeEnumeration(std::string name,
                                 std::vector<std::string> values);
  static TypeRef MakeObject(std::string name, std::vector<Field> fields,
                            TypeRef supertype);
  // Named alias for a structural type (TYPE Text LIST OF CHAR): same
  // structure as `aliased` but carries `name`.
  static TypeRef MakeNamed(std::string name, const TypeRef& aliased);

 protected:
  // Construction goes through the Make* factories (which build a derived
  // TypeBuilder internally); protected so the builder can default-construct.
  Type() = default;

 private:
  TypeKind kind_ = TypeKind::kAny;
  std::string name_;
  TypeRef element_;
  std::vector<Field> fields_;
  std::vector<std::string> enum_values_;
  TypeRef supertype_;
};

// The ISA relation of the paper: true when `sub` is the same type as `super`
// or a subtype of it. Covers the object subtype chains, the collection
// hierarchy (SET ISA COLLECTION, ...), numeric widening (INT ISA NUMERIC,
// REAL ISA NUMERIC), enumerations as CHAR subtypes, structural equality for
// anonymous types, and kAny as universal supertype. Collections are
// covariant in their element type (SET OF INT ISA COLLECTION OF NUMERIC).
bool Isa(const TypeRef& sub, const TypeRef& super);

// Structural type equality (names ignored except for object/enum identity).
bool SameType(const TypeRef& a, const TypeRef& b);

}  // namespace eds::types

#endif  // EDS_TYPES_TYPE_H_
