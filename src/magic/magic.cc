#include "magic/magic.h"

#include "common/strings.h"
#include "gov/failpoint.h"
#include "lera/lera.h"
#include "term/substitution.h"

namespace eds::magic {

using term::Term;
using term::TermList;
using term::TermRef;

bool ReferencesRelation(const term::TermRef& t, const std::string& rel_name) {
  if (lera::IsRelation(t)) {
    auto name = lera::RelationName(t);
    return name.ok() && EqualsIgnoreCase(*name, rel_name);
  }
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) {
      if (ReferencesRelation(a, rel_name)) return true;
    }
  }
  return false;
}

namespace {

// True if `t` is RELATION(rel_name).
bool IsRel(const TermRef& t, const std::string& rel_name) {
  if (!lera::IsRelation(t)) return false;
  auto name = lera::RelationName(t);
  return name.ok() && EqualsIgnoreCase(*name, rel_name);
}

// True if `qual` is exactly $1.2 = $2.1 (either operand order).
bool IsChainJoin(const TermRef& qual) {
  if (!qual->IsApply(term::kEq, 2)) return false;
  auto a = lera::GetAttr(qual->arg(0));
  auto b = lera::GetAttr(qual->arg(1));
  if (!a.ok() || !b.ok()) return false;
  return (a->input == 1 && a->column == 2 && b->input == 2 &&
          b->column == 1) ||
         (a->input == 2 && a->column == 1 && b->input == 1 && b->column == 2);
}

// True if `projs` is exactly ($1.1, $2.2).
bool IsChainProjection(const TermList& projs) {
  if (projs.size() != 2) return false;
  auto a = lera::GetAttr(projs[0]);
  auto b = lera::GetAttr(projs[1]);
  return a.ok() && b.ok() && a->input == 1 && a->column == 1 &&
         b->input == 2 && b->column == 2;
}

// SEARCH(LIST(a, b), $1.2 = $2.1, ($1.1, $2.2)) — binary composition.
TermRef Compose(const TermRef& a, const TermRef& b) {
  return lera::Search({a, b},
                      Term::Eq(Term::Attr(1, 2), Term::Attr(2, 1)),
                      {Term::Attr(1, 1), Term::Attr(2, 2)});
}

}  // namespace

Result<term::TermRef> AlexanderTransform(const std::string& rel_name,
                                         const term::TermRef& body,
                                         const Adornment& adornment) {
  if (!adornment.AnyBound()) {
    return Status::Unsupported("no bound column to push into the fixpoint");
  }
  // Already-focused fixpoints carry the "#M" suffix; transforming them
  // again would regress forever (the caller's qualification still mentions
  // the bound constant).
  if (rel_name.find("#M") != std::string::npos) {
    return Status::Unsupported("fixpoint is already focused");
  }
  if (!lera::IsUnion(body)) {
    return Status::Unsupported("fixpoint body is not a UNION");
  }
  EDS_ASSIGN_OR_RETURN(TermList branches, lera::UnionInputs(body));
  if (branches.size() != 2) {
    return Status::Unsupported("fixpoint body must have two UNION branches");
  }
  // Identify BASE (no reference to R) and STEP (the recursive branch).
  TermRef base, step;
  for (const TermRef& b : branches) {
    if (ReferencesRelation(b, rel_name)) {
      if (step != nullptr) {
        return Status::Unsupported("two recursive branches");
      }
      step = b;
    } else {
      if (base != nullptr) {
        return Status::Unsupported("two base branches");
      }
      base = b;
    }
  }
  if (base == nullptr || step == nullptr) {
    return Status::Unsupported("fixpoint body lacks base or recursive branch");
  }
  if (!lera::IsSearch(step)) {
    return Status::Unsupported("recursive branch is not a SEARCH");
  }
  EDS_ASSIGN_OR_RETURN(TermList inputs, lera::SearchInputs(step));
  EDS_ASSIGN_OR_RETURN(TermRef qual, lera::SearchQual(step));
  EDS_ASSIGN_OR_RETURN(TermList projs, lera::SearchProjections(step));

  // Locate the direct recursive inputs.
  std::vector<size_t> r_positions;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (IsRel(inputs[i], rel_name)) {
      r_positions.push_back(i);
    } else if (ReferencesRelation(inputs[i], rel_name)) {
      // R hidden below another operator: out of scope.
      return Status::Unsupported("recursive reference is not a direct input");
    }
  }
  const std::string magic_name = rel_name + "#M";
  const TermRef magic_rel = lera::Relation(magic_name);

  // σ over the base branch on the given bound columns, with an identity
  // projection of the recursive relation's arity (= |projs|, since the
  // union branches are union-compatible).
  auto seed_base = [&](const std::vector<const BoundColumn*>& bound) {
    TermList conjuncts;
    for (const BoundColumn* b : bound) {
      conjuncts.push_back(Term::Eq(Term::Attr(1, b->column),
                                   Term::Constant(b->constant)));
    }
    TermList identity;
    for (size_t j = 1; j <= projs.size(); ++j) {
      identity.push_back(Term::Attr(1, static_cast<int64_t>(j)));
    }
    return lera::Search({base}, term::MakeConjunction(conjuncts),
                        std::move(identity));
  };

  if (r_positions.size() == 1) {
    // General linear recursion, any arity, any join qualification, any
    // number of non-recursive inputs:  R = BASE ∪ π(σ(R, D1, ..., Dk)).
    // A bound output column b focuses iff it passes through the recursive
    // occurrence unchanged (projs[b-1] = ATTR(r_pos, b)): then
    // σ_{b=k}(R) = σ_{b=k}(BASE) ∪ π(σ(σ_{b=k}(R), D...)), so seeding the
    // base and iterating the same step over the focused relation computes
    // exactly the cone. All qualifying bound columns seed together.
    const int64_t r_attr_index = static_cast<int64_t>(r_positions[0]) + 1;
    std::vector<const BoundColumn*> usable;
    for (const BoundColumn& b : adornment.bound) {
      if (b.column < 1 || static_cast<size_t>(b.column) > projs.size()) {
        continue;
      }
      auto ref = lera::GetAttr(projs[static_cast<size_t>(b.column - 1)]);
      if (ref.ok() && ref->input == r_attr_index && ref->column == b.column) {
        usable.push_back(&b);
      }
    }
    if (usable.empty()) {
      return Status::Unsupported(
          "no bound column passes through the recursive occurrence");
    }
    TermList step_inputs = inputs;
    step_inputs[r_positions[0]] = magic_rel;
    TermRef seeded_step =
        lera::Search(std::move(step_inputs), qual, projs);
    return lera::Fix(magic_name, lera::UnionN({seed_base(usable),
                                               std::move(seeded_step)}));
  }

  if (r_positions.size() == 2 && inputs.size() == 2 && IsChainJoin(qual) &&
      IsChainProjection(projs)) {
    // Bilinear transitive closure (Fig. 5's BETTER_THAN): extend forward
    // (column 1 bound) or backward (column 2 bound) one BASE edge at a
    // time; TC(BASE) restricted to one bound endpoint is plain
    // reachability over BASE.
    for (const BoundColumn& b : adornment.bound) {
      if (b.column != 1 && b.column != 2) continue;
      TermRef seeded_step = b.column == 1 ? Compose(magic_rel, base)
                                          : Compose(base, magic_rel);
      return lera::Fix(magic_name,
                       lera::UnionN({seed_base({&b}),
                                     std::move(seeded_step)}));
    }
    return Status::Unsupported("no bound column usable for this linearity");
  }

  return Status::Unsupported(
      "recursion shape beyond linear / bilinear-chain support");
}

namespace {

using rewrite::RewriteContext;

// ADORNMENT(f, pos, sig): see magic.h.
Status MethodAdornment(const TermList& args, term::Bindings* env,
                       const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.ADORNMENT");
  (void)ctx;
  if (args.size() != 3 || !args[2]->is_variable()) {
    return Status::InvalidArgument("ADORNMENT expects (qual, pos, sig_out)");
  }
  EDS_ASSIGN_OR_RETURN(TermRef qual, term::ApplySubstitution(args[0], *env));
  EDS_ASSIGN_OR_RETURN(TermRef pos_t, term::ApplySubstitution(args[1], *env));
  if (!pos_t->is_constant() ||
      pos_t->constant().kind() != value::ValueKind::kInt) {
    return Status::InvalidArgument("ADORNMENT: pos must be an integer");
  }
  Adornment a = ComputeAdornment(qual, pos_t->constant().AsInt());
  if (!a.AnyBound()) {
    return Status::InvalidArgument("ADORNMENT: no bound column");
  }
  TermList entries;
  for (const BoundColumn& b : a.bound) {
    entries.push_back(Term::MakeTuple(
        {Term::Int(b.column), Term::Constant(b.constant)}));
  }
  env->SetVar(args[2]->var_name(), Term::List(std::move(entries)));
  return Status::OK();
}

// ALEXANDER(r, e, sig, u): see magic.h.
Status MethodAlexander(const TermList& args, term::Bindings* env,
                       const RewriteContext& ctx) {
  EDS_FAIL_POINT("rewrite.method.ALEXANDER");
  (void)ctx;
  if (args.size() != 4 || !args[3]->is_variable()) {
    return Status::InvalidArgument("ALEXANDER expects (r, e, sig, u_out)");
  }
  EDS_ASSIGN_OR_RETURN(TermRef rel, term::ApplySubstitution(args[0], *env));
  EDS_ASSIGN_OR_RETURN(TermRef body, term::ApplySubstitution(args[1], *env));
  EDS_ASSIGN_OR_RETURN(TermRef sig, term::ApplySubstitution(args[2], *env));
  EDS_ASSIGN_OR_RETURN(std::string rel_name, lera::RelationName(rel));
  if (!sig->IsApply(term::kList)) {
    return Status::InvalidArgument("ALEXANDER: sig must be a LIST");
  }
  Adornment adornment;
  for (const TermRef& entry : sig->args()) {
    if (!entry->IsApply(term::kTuple, 2) || !entry->arg(0)->is_constant() ||
        !entry->arg(1)->is_constant()) {
      return Status::InvalidArgument("ALEXANDER: malformed sig entry");
    }
    adornment.bound.push_back(BoundColumn{entry->arg(0)->constant().AsInt(),
                                          entry->arg(1)->constant()});
  }
  EDS_ASSIGN_OR_RETURN(TermRef focused,
                       AlexanderTransform(rel_name, body, adornment));
  env->SetVar(args[3]->var_name(), std::move(focused));
  return Status::OK();
}

}  // namespace

void InstallMagicBuiltins(rewrite::BuiltinRegistry* reg) {
  (void)reg->RegisterMethod("ADORNMENT", MethodAdornment);
  (void)reg->RegisterMethod("ALEXANDER", MethodAlexander);
}

}  // namespace eds::magic
