#include "magic/adornment.h"

#include "lera/lera.h"

namespace eds::magic {

std::string Adornment::Signature(size_t arity) const {
  std::string sig(arity, 'f');
  for (const BoundColumn& b : bound) {
    if (b.column >= 1 && static_cast<size_t>(b.column) <= arity) {
      sig[static_cast<size_t>(b.column) - 1] = 'b';
    }
  }
  return sig;
}

Adornment ComputeAdornment(const term::TermRef& qual, int64_t pos) {
  Adornment out;
  for (const term::TermRef& conj : term::Conjuncts(qual)) {
    if (!conj->IsApply(term::kEq, 2)) continue;
    const term::TermRef& a = conj->arg(0);
    const term::TermRef& b = conj->arg(1);
    const term::TermRef* attr = nullptr;
    const term::TermRef* constant = nullptr;
    if (lera::IsAttr(a) && b->is_constant()) {
      attr = &a;
      constant = &b;
    } else if (lera::IsAttr(b) && a->is_constant()) {
      attr = &b;
      constant = &a;
    } else {
      continue;
    }
    auto ref = lera::GetAttr(*attr);
    if (!ref.ok() || ref->input != pos) continue;
    out.bound.push_back(BoundColumn{ref->column, (*constant)->constant()});
  }
  return out;
}

}  // namespace eds::magic
