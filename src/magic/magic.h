#ifndef EDS_MAGIC_MAGIC_H_
#define EDS_MAGIC_MAGIC_H_

#include <string>

#include "common/result.h"
#include "magic/adornment.h"
#include "rewrite/builtins.h"
#include "term/term.h"

namespace eds::magic {

// The fixpoint-reduction method of §5.3: pushes a selection *before* the
// recursion by rewriting the fixpoint into one that computes only facts
// relevant to the bound constants. The paper invokes the Alexander method
// [Rohmer86]; we implement the equivalent Magic-Sets-style focusing
// directly on the algebra (both methods push selections into recursion;
// see DESIGN.md substitutions).
//
// Supported recursion shapes, for a recursive relation R with body
// UNION(SET(BASE, STEP)):
//
//   general linear recursion (any arity, any join qualification, any
//   number of non-recursive inputs):
//     STEP = SEARCH(LIST(..., R, ...), qual, projs), R a direct input
//     exactly once. A bound output column b focuses iff it passes through
//     the recursive occurrence unchanged (projs[b] = ATTR(r_pos, b)); then
//       M = σ_bound(BASE) ∪ STEP[R := M]
//     computes exactly σ_bound(R). All qualifying bound columns seed
//     together. This subsumes the classic right-linear (R ∘ D, column 1)
//     and left-linear (D ∘ R, column 2) chain shapes.
//
//   bilinear transitive closure (the BETTER_THAN view of Fig. 5):
//     STEP = SEARCH(LIST(R, R), $1.2 = $2.1, ($1.1, $2.2))
//     column 1 bound: forward seeded closure over BASE;
//     column 2 bound: backward seeded closure over BASE.
//
// Anything else returns Unsupported, in which case the invoking rule simply
// does not fire and the fixpoint is evaluated unfocused (semi-naive).
Result<term::TermRef> AlexanderTransform(const std::string& rel_name,
                                         const term::TermRef& body,
                                         const Adornment& adornment);

// True if RELATION(rel_name) occurs anywhere in `t`.
bool ReferencesRelation(const term::TermRef& t, const std::string& rel_name);

// Registers the rule methods of Fig. 9 into `reg`:
//   ADORNMENT(f, pos, sig)  computes the adornment of FIX input `pos` from
//                           qualification f; binds sig to
//                           LIST(TUPLE(col, const), ...). Fails when no
//                           column is bound (no selection to push).
//   ALEXANDER(r, e, sig, u) binds u to the focused fixpoint built from
//                           FIX(r, e) under adornment sig. Fails on
//                           unsupported recursion shapes.
void InstallMagicBuiltins(rewrite::BuiltinRegistry* reg);

}  // namespace eds::magic

#endif  // EDS_MAGIC_MAGIC_H_
