#ifndef EDS_MAGIC_ADORNMENT_H_
#define EDS_MAGIC_ADORNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::magic {

// One bound argument position of a recursive predicate: the paper's
// adornment ("z.Signature" in Fig. 9). A column is bound when the enclosing
// qualification constrains it to a constant.
struct BoundColumn {
  int64_t column;        // 1-based column of the FIX output
  value::Value constant; // the binding constant
};

struct Adornment {
  std::vector<BoundColumn> bound;  // may be empty (all-free: "ff...")

  // Classic adornment string, e.g. "bf" for arity 2 with column 1 bound.
  std::string Signature(size_t arity) const;
  bool AnyBound() const { return !bound.empty(); }
};

// Computes the adornment of input position `pos` of a SEARCH from its
// qualification `qual`: every conjunct of the form ATTR(pos, c) = const
// (either operand order) binds column c. Conjuncts referencing other inputs
// are ignored.
Adornment ComputeAdornment(const term::TermRef& qual, int64_t pos);

}  // namespace eds::magic

#endif  // EDS_MAGIC_ADORNMENT_H_
