#ifndef EDS_RULEDSL_PARSER_H_
#define EDS_RULEDSL_PARSER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rewrite/rule.h"

namespace eds::ruledsl {

// The concrete rule language of Fig. 6, with the paper's meta-rules of
// §4.2. A source unit is a sequence of statements:
//
//   # a rewriting rule:  name : lhs / constraints --> rhs / methods ;
//   union_collapse : UNION(SET(x)) /  -->  x / ;
//
//   search_merge :
//     SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a) /
//     -->
//     SEARCH(APPEND(x*, v*, z), f2 AND g, a2) /
//     MERGE_SUBST(f, x*, v*, z, b, f2), MERGE_SUBST(a, x*, v*, z, b, a2) ;
//
//   # a block of rules with an application budget (INF = saturation):
//   block(merging, {search_merge, union_collapse}, inf) ;
//
//   # the block sequence (at most one per unit):
//   seq({merging, pushing}, 2) ;
//
// Constraints are ','-separated boolean terms (AND also works within one
// constraint). '/' is reserved as the section separator: use DIV(a, b) for
// division inside rule terms.

struct BlockDecl {
  std::string name;
  std::vector<std::string> rule_names;
  int64_t limit;  // rewrite::kSaturate for INF
  rewrite::SourceLoc loc;
};

struct SeqDecl {
  std::vector<std::string> block_names;
  int64_t limit;
  rewrite::SourceLoc loc;
};

struct CompiledUnit {
  std::vector<rewrite::Rule> rules;
  std::vector<BlockDecl> blocks;
  std::optional<SeqDecl> seq;
};

// Parses a source unit. Purely syntactic: name resolution and rule
// validation happen in CompileProgram (compiler.h). Every rule, block and
// seq declaration carries a SourceLoc (1-based line:column of its first
// token) so downstream validation and lint diagnostics can point at it.
Result<CompiledUnit> ParseRuleSource(std::string_view text);

// Converts a byte offset into `text` to a 1-based line:column SourceLoc.
// Token positions index into the original source (comment stripping
// preserves offsets), so this also locates parse-error offsets.
rewrite::SourceLoc LocateOffset(std::string_view text, size_t offset);

}  // namespace eds::ruledsl

#endif  // EDS_RULEDSL_PARSER_H_
