#include "ruledsl/compiler.h"

#include <map>

#include "common/strings.h"
#include "lint/lint.h"
#include "verify/verify.h"

namespace eds::ruledsl {

namespace {

// Post-compile hook for CompileOptions::run_verify: bounded soundness
// checking of the finished program, findings appended to the diagnostics
// report. Infrastructure failures inside the verifier are already reported
// as EDS-S011 notes, so the hook itself never fails the compile.
void RunVerifyHook(const rewrite::RewriteProgram& program,
                   const rewrite::BuiltinRegistry& builtins,
                   const CompileOptions& opts) {
  if (opts.diagnostics == nullptr || !opts.run_verify) return;
  verify::VerifyOptions vo =
      opts.verify_options != nullptr ? *opts.verify_options
                                     : verify::VerifyOptions{};
  (void)verify::VerifyProgram(program, builtins, vo, opts.diagnostics);
  opts.diagnostics->SortByLocation();
}

}  // namespace

Result<rewrite::RewriteProgram> CompileProgram(
    const CompiledUnit& unit, const rewrite::BuiltinRegistry& builtins,
    const CompileOptions& opts) {
  // Validate all rules first: a bad rule is an error even if unreferenced.
  std::map<std::string, const rewrite::Rule*> by_name;
  for (const rewrite::Rule& r : unit.rules) {
    EDS_RETURN_IF_ERROR(rewrite::ValidateRule(r, builtins));
    auto [it, inserted] = by_name.emplace(ToUpperAscii(r.name), &r);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate rule name '" + r.name + "'");
    }
  }

  if (opts.diagnostics != nullptr) {
    lint::ReportUnreferencedRules(unit, opts.diagnostics);
    if (opts.run_lint) {
      lint::LintOptions lint_opts;
      lint_opts.catalog = opts.catalog;
      lint::AnalyzeUnit(unit, builtins, lint_opts, opts.diagnostics);
      opts.diagnostics->SortByLocation();
    }
  }

  rewrite::RewriteProgram program;
  if (unit.blocks.empty()) {
    if (unit.seq.has_value()) {
      return Status::InvalidArgument("seq declared without any blocks");
    }
    rewrite::RuleBlock all;
    all.name = "default";
    all.rules = unit.rules;
    all.limit = rewrite::kSaturate;
    program.blocks.push_back(std::move(all));
    program.seq_limit = 1;
    RunVerifyHook(program, builtins, opts);
    return program;
  }

  std::map<std::string, rewrite::RuleBlock> blocks;
  std::vector<std::string> declaration_order;
  for (const BlockDecl& decl : unit.blocks) {
    rewrite::RuleBlock block;
    block.name = decl.name;
    block.limit = decl.limit;
    for (const std::string& rule_name : decl.rule_names) {
      auto it = by_name.find(ToUpperAscii(rule_name));
      if (it == by_name.end()) {
        return Status::NotFound("block '" + decl.name +
                                "' references unknown rule '" + rule_name +
                                "'");
      }
      block.rules.push_back(*it->second);
    }
    std::string key = ToUpperAscii(decl.name);
    if (blocks.count(key) > 0) {
      return Status::AlreadyExists("duplicate block name '" + decl.name +
                                   "'");
    }
    blocks.emplace(std::move(key), std::move(block));
    declaration_order.push_back(decl.name);
  }

  if (unit.seq.has_value()) {
    for (const std::string& block_name : unit.seq->block_names) {
      auto it = blocks.find(ToUpperAscii(block_name));
      if (it == blocks.end()) {
        return Status::NotFound("seq references unknown block '" +
                                block_name + "'");
      }
      program.blocks.push_back(it->second);
    }
    program.seq_limit = unit.seq->limit;
  } else {
    for (const std::string& name : declaration_order) {
      program.blocks.push_back(blocks.at(ToUpperAscii(name)));
    }
    program.seq_limit = 1;
  }
  RunVerifyHook(program, builtins, opts);
  return program;
}

Result<rewrite::RewriteProgram> CompileProgram(
    const CompiledUnit& unit, const rewrite::BuiltinRegistry& builtins) {
  return CompileProgram(unit, builtins, CompileOptions{});
}

Result<rewrite::RewriteProgram> CompileRuleSource(
    std::string_view text, const rewrite::BuiltinRegistry& builtins,
    const CompileOptions& opts) {
  EDS_ASSIGN_OR_RETURN(CompiledUnit unit, ParseRuleSource(text));
  return CompileProgram(unit, builtins, opts);
}

Result<rewrite::RewriteProgram> CompileRuleSource(
    std::string_view text, const rewrite::BuiltinRegistry& builtins) {
  return CompileRuleSource(text, builtins, CompileOptions{});
}

}  // namespace eds::ruledsl
