#ifndef EDS_RULEDSL_COMPILER_H_
#define EDS_RULEDSL_COMPILER_H_

#include <string_view>

#include "common/result.h"
#include "rewrite/builtins.h"
#include "rewrite/engine.h"
#include "ruledsl/parser.h"

namespace eds::ruledsl {

// Compiles a parsed unit into an executable RewriteProgram:
//   * validates every rule against `builtins` (methods must exist,
//     variables must be bound, SET patterns well-formed);
//   * resolves block rule-name lists and the seq block-name list;
//   * when no blocks are declared, all rules form one implicit saturation
//     block, in definition order;
//   * when blocks are declared but no seq, blocks run once in declaration
//     order (seq limit 1).
// A rule may appear in several blocks (§4.2); rules not referenced by any
// declared block are dropped with no error (they may be intended for a
// different program), which mirrors the paper's "changing block definitions
// ... may completely change the generated optimizer".
Result<rewrite::RewriteProgram> CompileProgram(
    const CompiledUnit& unit, const rewrite::BuiltinRegistry& builtins);

// Convenience: parse + compile in one call.
Result<rewrite::RewriteProgram> CompileRuleSource(
    std::string_view text, const rewrite::BuiltinRegistry& builtins);

}  // namespace eds::ruledsl

#endif  // EDS_RULEDSL_COMPILER_H_
