#ifndef EDS_RULEDSL_COMPILER_H_
#define EDS_RULEDSL_COMPILER_H_

#include <string_view>

#include "common/result.h"
#include "rewrite/builtins.h"
#include "rewrite/engine.h"
#include "ruledsl/parser.h"

namespace eds::catalog {
class Catalog;
}
namespace eds::lint {
class LintReport;
}
namespace eds::verify {
struct VerifyOptions;
}

namespace eds::ruledsl {

struct CompileOptions {
  // When non-null, receives compile-time lint diagnostics. Always reported:
  // an EDS-L011 warning for every rule that declared blocks exist but none
  // references — CompileProgram drops such rules from the program without
  // an error, which is easy to miss.
  lint::LintReport* diagnostics = nullptr;
  // Additionally run the whole-program analysis passes (lint/lint.h:
  // divergence, unreachable functors, shadowing, constraint/method hygiene)
  // and append their findings to *diagnostics. Ignored when diagnostics is
  // null. Lint never fails the compile; callers decide what to do with
  // warnings and errors in the report.
  bool run_lint = false;
  // Additionally run the bounded soundness verifier (verify/verify.h) over
  // every distinct rule of the compiled program and append its EDS-Sxxx
  // findings to *diagnostics. Ignored when diagnostics is null. Like lint,
  // verification never fails the compile by itself — callers inspect the
  // report (exec::Session's opt-in constraint verification does reject on
  // soundness errors).
  bool run_verify = false;
  // Knobs for run_verify (seed, instance counts, budgets); defaults apply
  // when null.
  const verify::VerifyOptions* verify_options = nullptr;
  // Catalog for lint's ISA type-existence/compatibility checks; may be null.
  const catalog::Catalog* catalog = nullptr;
};

// Compiles a parsed unit into an executable RewriteProgram:
//   * validates every rule against `builtins` (methods must exist,
//     variables must be bound, SET patterns well-formed);
//   * resolves block rule-name lists and the seq block-name list;
//   * when no blocks are declared, all rules form one implicit saturation
//     block, in definition order;
//   * when blocks are declared but no seq, blocks run once in declaration
//     order (seq limit 1).
// A rule may appear in several blocks (§4.2); rules not referenced by any
// declared block are dropped with no error (they may be intended for a
// different program), which mirrors the paper's "changing block definitions
// ... may completely change the generated optimizer". Pass a
// CompileOptions with a diagnostics report to be told about such drops,
// and set run_lint to analyze the whole program while compiling it.
Result<rewrite::RewriteProgram> CompileProgram(
    const CompiledUnit& unit, const rewrite::BuiltinRegistry& builtins,
    const CompileOptions& opts);
Result<rewrite::RewriteProgram> CompileProgram(
    const CompiledUnit& unit, const rewrite::BuiltinRegistry& builtins);

// Convenience: parse + compile in one call.
Result<rewrite::RewriteProgram> CompileRuleSource(
    std::string_view text, const rewrite::BuiltinRegistry& builtins,
    const CompileOptions& opts);
Result<rewrite::RewriteProgram> CompileRuleSource(
    std::string_view text, const rewrite::BuiltinRegistry& builtins);

}  // namespace eds::ruledsl

#endif  // EDS_RULEDSL_COMPILER_H_
