#include "ruledsl/parser.h"

#include "common/strings.h"
#include "rewrite/engine.h"
#include "ruledsl/lexer.h"
#include "term/parser.h"

namespace eds::ruledsl {

using term::TokKind;
using term::Token;

namespace {

class DslParser {
 public:
  explicit DslParser(const std::vector<Token>* tokens) : tokens_(tokens) {}

  Result<CompiledUnit> ParseUnit() {
    CompiledUnit unit;
    while (Peek().kind != TokKind::kEnd) {
      const Token& t = Peek();
      if (t.kind != TokKind::kIdent) {
        return Error("expected a rule name, 'block' or 'seq'");
      }
      if (EqualsIgnoreCase(t.text, "block")) {
        EDS_ASSIGN_OR_RETURN(BlockDecl b, ParseBlock());
        unit.blocks.push_back(std::move(b));
      } else if (EqualsIgnoreCase(t.text, "seq")) {
        if (unit.seq.has_value()) {
          return Error("duplicate seq declaration");
        }
        EDS_ASSIGN_OR_RETURN(SeqDecl s, ParseSeq());
        unit.seq = std::move(s);
      } else {
        EDS_ASSIGN_OR_RETURN(rewrite::Rule r, ParseRule());
        unit.rules.push_back(std::move(r));
      }
    }
    return unit;
  }

 private:
  const Token& Peek() const {
    static const Token kEnd;
    return pos_ < tokens_->size() ? (*tokens_)[pos_] : kEnd;
  }
  void Advance() { ++pos_; }

  Status Error(const std::string& message) const {
    return Status::ParseError("at offset " + std::to_string(Peek().pos) +
                              ": " + message);
  }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // name : lhs / constraints --> rhs / methods ;
  Result<rewrite::Rule> ParseRule() {
    rewrite::Rule rule;
    rule.loc.offset = Peek().pos;
    EDS_ASSIGN_OR_RETURN(rule.name, ExpectIdent("rule name"));
    EDS_RETURN_IF_ERROR(ExpectColon());
    EDS_ASSIGN_OR_RETURN(rule.lhs, ParseRuleTerm());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kSlash, "'/'"));
    // Constraints until '-->'.
    if (Peek().kind != TokKind::kArrow) {
      while (true) {
        EDS_ASSIGN_OR_RETURN(term::TermRef c, ParseRuleTerm());
        rule.constraints.push_back(std::move(c));
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    EDS_RETURN_IF_ERROR(Expect(TokKind::kArrow, "'-->'"));
    EDS_ASSIGN_OR_RETURN(rule.rhs, ParseRuleTerm());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kSlash, "'/'"));
    // Methods until ';'.
    if (Peek().kind != TokKind::kSemicolon) {
      while (true) {
        EDS_ASSIGN_OR_RETURN(rewrite::MethodCall m, ParseMethodCall());
        rule.methods.push_back(std::move(m));
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    EDS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
    return rule;
  }

  Status ExpectColon() {
    if (Peek().kind != TokKind::kColon) {
      return Error("expected ':' after rule name");
    }
    Advance();
    return Status::OK();
  }

  Result<term::TermRef> ParseRuleTerm() {
    term::TermParser tp(tokens_, pos_, /*allow_division=*/false);
    Result<term::TermRef> t = tp.ParseExpression();
    if (!t.ok()) return t.status();
    pos_ = tp.position();
    return t;
  }

  Result<rewrite::MethodCall> ParseMethodCall() {
    rewrite::MethodCall call;
    EDS_ASSIGN_OR_RETURN(call.name, ExpectIdent("method name"));
    EDS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    if (Peek().kind != TokKind::kRParen) {
      while (true) {
        EDS_ASSIGN_OR_RETURN(term::TermRef a, ParseRuleTerm());
        call.args.push_back(std::move(a));
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return call;
  }

  // block(name, {rule, ...}, limit) ;
  Result<BlockDecl> ParseBlock() {
    BlockDecl decl;
    decl.loc.offset = Peek().pos;
    Advance();  // 'block'
    EDS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    EDS_ASSIGN_OR_RETURN(decl.name, ExpectIdent("block name"));
    EDS_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    EDS_ASSIGN_OR_RETURN(decl.rule_names, ParseNameSet());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    EDS_ASSIGN_OR_RETURN(decl.limit, ParseLimit());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    EDS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
    return decl;
  }

  // seq({block, ...}, limit) ;
  Result<SeqDecl> ParseSeq() {
    SeqDecl decl;
    decl.loc.offset = Peek().pos;
    Advance();  // 'seq'
    EDS_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    EDS_ASSIGN_OR_RETURN(decl.block_names, ParseNameSet());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kComma, "','"));
    EDS_ASSIGN_OR_RETURN(decl.limit, ParseLimit());
    EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    EDS_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
    return decl;
  }

  Result<std::vector<std::string>> ParseNameSet() {
    EDS_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
    std::vector<std::string> names;
    if (Peek().kind != TokKind::kRBrace) {
      while (true) {
        EDS_ASSIGN_OR_RETURN(std::string n, ExpectIdent("name"));
        names.push_back(std::move(n));
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    EDS_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
    return names;
  }

  Result<int64_t> ParseLimit() {
    if (Peek().kind == TokKind::kIdent &&
        (EqualsIgnoreCase(Peek().text, "inf") ||
         EqualsIgnoreCase(Peek().text, "infinite"))) {
      Advance();
      return static_cast<int64_t>(rewrite::kSaturate);
    }
    if (Peek().kind == TokKind::kInt) {
      int64_t v = Peek().int_value;
      Advance();
      if (v < 0) return Error("limit must be non-negative or INF");
      return v;
    }
    return Error("expected a limit (integer or INF)");
  }

  const std::vector<Token>* tokens_;
  size_t pos_ = 0;
};

}  // namespace

rewrite::SourceLoc LocateOffset(std::string_view text, size_t offset) {
  rewrite::SourceLoc loc;
  loc.offset = offset;
  loc.line = 1;
  loc.column = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++loc.line;
      loc.column = 1;
    } else {
      ++loc.column;
    }
  }
  return loc;
}

Result<CompiledUnit> ParseRuleSource(std::string_view text) {
  EDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeRuleSource(text));
  DslParser parser(&tokens);
  Result<CompiledUnit> unit = parser.ParseUnit();
  if (!unit.ok()) return unit;
  for (rewrite::Rule& r : unit->rules) r.loc = LocateOffset(text, r.loc.offset);
  for (BlockDecl& b : unit->blocks) b.loc = LocateOffset(text, b.loc.offset);
  if (unit->seq.has_value()) {
    unit->seq->loc = LocateOffset(text, unit->seq->loc.offset);
  }
  return unit;
}

}  // namespace eds::ruledsl
