#include "ruledsl/lexer.h"

namespace eds::ruledsl {

std::string StripComments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool in_comment = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_comment) {
      if (c == '\n') {
        in_comment = false;
        out += c;  // keep line structure for diagnostics offsets
      } else {
        out += ' ';
      }
      continue;
    }
    if (c == '\'' ) in_string = !in_string;
    if (c == '#' && !in_string) {
      in_comment = true;
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

Result<std::vector<term::Token>> TokenizeRuleSource(std::string_view text) {
  std::string clean = StripComments(text);
  return term::Tokenize(clean);
}

}  // namespace eds::ruledsl
