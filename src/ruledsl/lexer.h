#ifndef EDS_RULEDSL_LEXER_H_
#define EDS_RULEDSL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "term/parser.h"

namespace eds::ruledsl {

// Removes '#' line comments (outside string literals) from rule source.
std::string StripComments(std::string_view text);

// Tokenizes rule source: comments stripped, then the shared term tokenizer.
Result<std::vector<term::Token>> TokenizeRuleSource(std::string_view text);

}  // namespace eds::ruledsl

#endif  // EDS_RULEDSL_LEXER_H_
