#ifndef EDS_VALUE_COLLECTION_LIB_H_
#define EDS_VALUE_COLLECTION_LIB_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "value/value.h"

namespace eds::value {

// A pure function over values: no access to the database state. These are
// the "ADT function library" of the paper — the collection functions of
// Fig. 1 plus scalar arithmetic, comparison and string functions. Both the
// execution engine and the rewriter's EVALUATE method dispatch through this
// library, and a database implementor extends the system by registering new
// functions here (the paper's extensibility story).
using PureFunction =
    std::function<Result<Value>(const std::vector<Value>& args)>;

class FunctionLibrary {
 public:
  FunctionLibrary() = default;
  FunctionLibrary(const FunctionLibrary&) = delete;
  FunctionLibrary& operator=(const FunctionLibrary&) = delete;

  // Registers `fn` under `name` (case-insensitive). AlreadyExists on
  // duplicates.
  Status Register(const std::string& name, PureFunction fn);

  // Replaces or adds a function; used by tests that stub behaviour.
  void ForceRegister(const std::string& name, PureFunction fn);

  bool Contains(const std::string& name) const;

  // Invokes `name` with `args`. NotFound if unregistered; functions
  // themselves return InvalidArgument / TypeError on bad arguments.
  Result<Value> Call(const std::string& name,
                     const std::vector<Value>& args) const;

  std::vector<std::string> Names() const;

  // A library preloaded with the builtin functions:
  //
  //   arithmetic   ADD SUB MUL DIV MOD NEG ABS
  //   comparison   EQ NE LT LE GT GE   (return kBool; total Value order)
  //   logical      AND OR NOT
  //   string       CONCAT LENGTH UPPER LOWER
  //   collections  MEMBER ISEMPTY COUNT INSERT REMOVE UNION INTERSECTION
  //                DIFFERENCE INCLUDE CHOICE APPEND NTH FIRST LAST
  //                MAKESET MAKEBAG MAKELIST MAKEARRAY
  //                TOSET TOBAG TOLIST   (the Convert functions of Fig. 1)
  static const FunctionLibrary& Default();

  // Installs the builtins above into `lib` (used to build extended copies).
  static void InstallBuiltins(FunctionLibrary* lib);

  // Replaces this library's contents with a copy of `other`'s registrations
  // (std::function handles are shared). Used by catalog::Catalog::Clone.
  void CloneFrom(const FunctionLibrary& other) { by_name_ = other.by_name_; }

 private:
  std::map<std::string, PureFunction> by_name_;  // keys upper-cased
};

}  // namespace eds::value

#endif  // EDS_VALUE_COLLECTION_LIB_H_
