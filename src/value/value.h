#ifndef EDS_VALUE_VALUE_H_
#define EDS_VALUE_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace eds::value {

// Runtime value kinds. Mirrors the ESQL data model: scalar values, the
// generic collection ADTs of Fig. 1 (set, bag, list, array), nested tuples,
// and references to objects (values with identity live in an ObjectHeap and
// are reached through kObjectRef).
enum class ValueKind {
  kNull = 0,
  kBool,
  kInt,
  kReal,
  kString,
  kTuple,
  kSet,
  kBag,
  kList,
  kArray,
  kObjectRef,
};

const char* ValueKindName(ValueKind kind);

class Value;

// Payload of a tuple value. `names` is either empty (positional tuple, the
// common case for relation rows) or parallel to `values` (nested tuples whose
// attributes are accessed by name, e.g. object state).
struct TupleData {
  std::vector<std::string> names;
  std::vector<Value> values;
};

// Value is a small value-semantic variant. Collections and tuples share
// their payload via shared_ptr, so copying a Value is O(1); all payloads are
// treated as immutable after construction (mutating operations return new
// Values). Sets and bags are kept in canonical sorted order (sets
// deduplicated), which makes deep equality and set operations linear merges.
namespace internal {
// Per-thread count of Value copy-constructions/assignments. Copies are
// O(1) (shared_ptr bumps) but not free; the executor samples this around
// Execute() and surfaces it as the exec.value_copies metric so copy
// regressions in materialization paths are visible. Moves are uncounted.
extern thread_local uint64_t value_copies;
}  // namespace internal

// This thread's running Value copy count (monotonic; compare deltas).
uint64_t ValueCopyCount();

class Value {
 public:
  Value() : kind_(ValueKind::kNull) {}

  Value(const Value& other)
      : kind_(other.kind_),
        bool_(other.bool_),
        int_(other.int_),
        real_(other.real_),
        oid_(other.oid_),
        string_(other.string_),
        tuple_(other.tuple_),
        elems_(other.elems_) {
    ++internal::value_copies;
  }
  Value& operator=(const Value& other) {
    kind_ = other.kind_;
    bool_ = other.bool_;
    int_ = other.int_;
    real_ = other.real_;
    oid_ = other.oid_;
    string_ = other.string_;
    tuple_ = other.tuple_;
    elems_ = other.elems_;
    ++internal::value_copies;
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Int(int64_t i);
  static Value Real(double d);
  static Value String(std::string s);
  static Value ObjectRef(uint64_t oid);

  // Positional tuple.
  static Value Tuple(std::vector<Value> values);
  // Named tuple; `names` must be parallel to `values`.
  static Value NamedTuple(std::vector<std::string> names,
                          std::vector<Value> values);

  // Builds a set from arbitrary elements: sorts and deduplicates.
  static Value Set(std::vector<Value> elements);
  // Builds a bag: sorts, keeps duplicates.
  static Value Bag(std::vector<Value> elements);
  static Value List(std::vector<Value> elements);
  static Value Array(std::vector<Value> elements);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_collection() const {
    return kind_ == ValueKind::kSet || kind_ == ValueKind::kBag ||
           kind_ == ValueKind::kList || kind_ == ValueKind::kArray;
  }
  bool is_numeric() const {
    return kind_ == ValueKind::kInt || kind_ == ValueKind::kReal;
  }

  // Accessors; the caller must check kind() first (checked in debug builds).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsReal() const;           // also accepts kInt (widening)
  const std::string& AsString() const;
  uint64_t AsObjectRef() const;

  // Tuple access.
  const TupleData& tuple() const;
  size_t TupleSize() const { return tuple().values.size(); }
  const Value& Field(size_t i) const { return tuple().values[i]; }
  // Named field lookup (case-insensitive); returns nullptr if absent or if
  // this tuple is positional.
  const Value* FindField(const std::string& name) const;

  // Collection element access (set/bag/list/array).
  const std::vector<Value>& elements() const;
  size_t size() const { return elements().size(); }

  // Renders like ESQL literals: 17, 'abc', {1, 2}, [a, b], <oid:42>,
  // (Name: 'Quinn', Salary: 12000).
  std::string ToString() const;

 private:
  ValueKind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double real_ = 0;
  uint64_t oid_ = 0;
  std::shared_ptr<const std::string> string_;
  std::shared_ptr<const TupleData> tuple_;
  std::shared_ptr<const std::vector<Value>> elems_;
};

// Total order over all values: kinds rank first (null < bool < numeric <
// string < tuple < set < bag < list < array < objectref), then payloads
// compare lexicographically / numerically. kInt and kReal compare as
// numbers, so Int(2) == Real(2.0). Returns <0, 0, >0.
int Compare(const Value& a, const Value& b);

bool operator==(const Value& a, const Value& b);
inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }
inline bool operator<(const Value& a, const Value& b) {
  return Compare(a, b) < 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace eds::value

#endif  // EDS_VALUE_VALUE_H_
