#include "value/collection_lib.h"

#include <algorithm>

#include "common/strings.h"

namespace eds::value {

namespace {

Status Arity(const std::string& name, const std::vector<Value>& args,
             size_t n) {
  if (args.size() != n) {
    return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                   " argument(s), got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Status WantCollection(const std::string& name, const Value& v) {
  if (!v.is_collection()) {
    return Status::TypeError(name + ": expected a collection, got " +
                             std::string(ValueKindName(v.kind())));
  }
  return Status::OK();
}

Status WantSequence(const std::string& name, const Value& v) {
  if (v.kind() != ValueKind::kList && v.kind() != ValueKind::kArray) {
    return Status::TypeError(name + ": expected a list or array, got " +
                             std::string(ValueKindName(v.kind())));
  }
  return Status::OK();
}

// Rebuilds a collection of `kind` from elements, restoring canonical form.
Value Rebuild(ValueKind kind, std::vector<Value> elems) {
  switch (kind) {
    case ValueKind::kSet: return Value::Set(std::move(elems));
    case ValueKind::kBag: return Value::Bag(std::move(elems));
    case ValueKind::kArray: return Value::Array(std::move(elems));
    default: return Value::List(std::move(elems));
  }
}

bool NumericArgs(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (!v.is_numeric()) return false;
  }
  return true;
}

bool AnyReal(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.kind() == ValueKind::kReal) return true;
  }
  return false;
}

Result<Value> Add(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("ADD", args, 2));
  if (!NumericArgs(args)) return Status::TypeError("ADD: non-numeric operand");
  if (AnyReal(args)) return Value::Real(args[0].AsReal() + args[1].AsReal());
  return Value::Int(args[0].AsInt() + args[1].AsInt());
}

Result<Value> Sub(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("SUB", args, 2));
  if (!NumericArgs(args)) return Status::TypeError("SUB: non-numeric operand");
  if (AnyReal(args)) return Value::Real(args[0].AsReal() - args[1].AsReal());
  return Value::Int(args[0].AsInt() - args[1].AsInt());
}

Result<Value> Mul(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("MUL", args, 2));
  if (!NumericArgs(args)) return Status::TypeError("MUL: non-numeric operand");
  if (AnyReal(args)) return Value::Real(args[0].AsReal() * args[1].AsReal());
  return Value::Int(args[0].AsInt() * args[1].AsInt());
}

Result<Value> Div(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("DIV", args, 2));
  if (!NumericArgs(args)) return Status::TypeError("DIV: non-numeric operand");
  if (AnyReal(args)) {
    double d = args[1].AsReal();
    if (d == 0) return Status::RuntimeError("DIV: division by zero");
    return Value::Real(args[0].AsReal() / d);
  }
  int64_t d = args[1].AsInt();
  if (d == 0) return Status::RuntimeError("DIV: division by zero");
  return Value::Int(args[0].AsInt() / d);
}

Result<Value> Mod(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("MOD", args, 2));
  if (args[0].kind() != ValueKind::kInt || args[1].kind() != ValueKind::kInt) {
    return Status::TypeError("MOD: integer operands required");
  }
  int64_t d = args[1].AsInt();
  if (d == 0) return Status::RuntimeError("MOD: division by zero");
  return Value::Int(args[0].AsInt() % d);
}

Result<Value> Neg(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("NEG", args, 1));
  if (args[0].kind() == ValueKind::kInt) return Value::Int(-args[0].AsInt());
  if (args[0].kind() == ValueKind::kReal) return Value::Real(-args[0].AsReal());
  return Status::TypeError("NEG: non-numeric operand");
}

Result<Value> Abs(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("ABS", args, 1));
  if (args[0].kind() == ValueKind::kInt) {
    int64_t i = args[0].AsInt();
    return Value::Int(i < 0 ? -i : i);
  }
  if (args[0].kind() == ValueKind::kReal) {
    double d = args[0].AsReal();
    return Value::Real(d < 0 ? -d : d);
  }
  return Status::TypeError("ABS: non-numeric operand");
}

template <typename Pred>
Result<Value> Comparison(const char* name, Pred pred,
                         const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity(name, args, 2));
  if (args[0].is_null() || args[1].is_null()) return Value::Null();
  return Value::Bool(pred(Compare(args[0], args[1])));
}

Result<Value> LogicalAnd(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("AND", args, 2));
  // Three-valued logic: FALSE dominates NULL.
  bool has_null = args[0].is_null() || args[1].is_null();
  bool has_false =
      (args[0].kind() == ValueKind::kBool && !args[0].AsBool()) ||
      (args[1].kind() == ValueKind::kBool && !args[1].AsBool());
  if (has_false) return Value::Bool(false);
  if (has_null) return Value::Null();
  if (args[0].kind() != ValueKind::kBool || args[1].kind() != ValueKind::kBool) {
    return Status::TypeError("AND: boolean operands required");
  }
  return Value::Bool(args[0].AsBool() && args[1].AsBool());
}

Result<Value> LogicalOr(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("OR", args, 2));
  bool has_null = args[0].is_null() || args[1].is_null();
  bool has_true = (args[0].kind() == ValueKind::kBool && args[0].AsBool()) ||
                  (args[1].kind() == ValueKind::kBool && args[1].AsBool());
  if (has_true) return Value::Bool(true);
  if (has_null) return Value::Null();
  if (args[0].kind() != ValueKind::kBool || args[1].kind() != ValueKind::kBool) {
    return Status::TypeError("OR: boolean operands required");
  }
  return Value::Bool(args[0].AsBool() || args[1].AsBool());
}

Result<Value> LogicalNot(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("NOT", args, 1));
  if (args[0].is_null()) return Value::Null();
  if (args[0].kind() != ValueKind::kBool) {
    return Status::TypeError("NOT: boolean operand required");
  }
  return Value::Bool(!args[0].AsBool());
}

Result<Value> Concat(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("CONCAT", args, 2));
  if (args[0].kind() != ValueKind::kString ||
      args[1].kind() != ValueKind::kString) {
    return Status::TypeError("CONCAT: string operands required");
  }
  return Value::String(args[0].AsString() + args[1].AsString());
}

Result<Value> Length(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("LENGTH", args, 1));
  if (args[0].kind() == ValueKind::kString) {
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  }
  if (args[0].is_collection()) {
    return Value::Int(static_cast<int64_t>(args[0].size()));
  }
  return Status::TypeError("LENGTH: string or collection required");
}

Result<Value> Upper(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("UPPER", args, 1));
  if (args[0].kind() != ValueKind::kString) {
    return Status::TypeError("UPPER: string required");
  }
  return Value::String(eds::ToUpperAscii(args[0].AsString()));
}

Result<Value> Lower(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("LOWER", args, 1));
  if (args[0].kind() != ValueKind::kString) {
    return Status::TypeError("LOWER: string required");
  }
  return Value::String(eds::ToLowerAscii(args[0].AsString()));
}

// ---- collection functions (Fig. 1) ----

Result<Value> Member(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("MEMBER", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("MEMBER", args[1]));
  const auto& es = args[1].elements();
  if (args[1].kind() == ValueKind::kSet || args[1].kind() == ValueKind::kBag) {
    return Value::Bool(std::binary_search(es.begin(), es.end(), args[0]));
  }
  return Value::Bool(std::find(es.begin(), es.end(), args[0]) != es.end());
}

Result<Value> IsEmpty(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("ISEMPTY", args, 1));
  EDS_RETURN_IF_ERROR(WantCollection("ISEMPTY", args[0]));
  return Value::Bool(args[0].size() == 0);
}

Result<Value> Count(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("COUNT", args, 1));
  EDS_RETURN_IF_ERROR(WantCollection("COUNT", args[0]));
  return Value::Int(static_cast<int64_t>(args[0].size()));
}

Result<Value> Insert(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("INSERT", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("INSERT", args[1]));
  std::vector<Value> es = args[1].elements();
  es.push_back(args[0]);
  return Rebuild(args[1].kind(), std::move(es));
}

Result<Value> Remove(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("REMOVE", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("REMOVE", args[1]));
  std::vector<Value> es = args[1].elements();
  auto it = std::find(es.begin(), es.end(), args[0]);
  if (it != es.end()) es.erase(it);
  return Rebuild(args[1].kind(), std::move(es));
}

Result<Value> CollUnion(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("UNION", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("UNION", args[0]));
  EDS_RETURN_IF_ERROR(WantCollection("UNION", args[1]));
  std::vector<Value> es = args[0].elements();
  const auto& bs = args[1].elements();
  es.insert(es.end(), bs.begin(), bs.end());
  return Rebuild(args[0].kind(), std::move(es));
}

Result<Value> Intersection(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("INTERSECTION", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("INTERSECTION", args[0]));
  EDS_RETURN_IF_ERROR(WantCollection("INTERSECTION", args[1]));
  const auto& bs = args[1].elements();
  std::vector<Value> out;
  std::vector<Value> remaining = bs;  // multiset semantics for bags
  for (const Value& e : args[0].elements()) {
    auto it = std::find(remaining.begin(), remaining.end(), e);
    if (it != remaining.end()) {
      out.push_back(e);
      remaining.erase(it);
    }
  }
  return Rebuild(args[0].kind(), std::move(out));
}

Result<Value> Difference(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("DIFFERENCE", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("DIFFERENCE", args[0]));
  EDS_RETURN_IF_ERROR(WantCollection("DIFFERENCE", args[1]));
  std::vector<Value> remaining = args[1].elements();
  std::vector<Value> out;
  for (const Value& e : args[0].elements()) {
    auto it = std::find(remaining.begin(), remaining.end(), e);
    if (it != remaining.end()) {
      remaining.erase(it);  // cancel one occurrence (bag semantics)
    } else {
      out.push_back(e);
    }
  }
  return Rebuild(args[0].kind(), std::move(out));
}

// INCLUDE(x, y): true when x is included in y (x subseteq y).
Result<Value> Include(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("INCLUDE", args, 2));
  EDS_RETURN_IF_ERROR(WantCollection("INCLUDE", args[0]));
  EDS_RETURN_IF_ERROR(WantCollection("INCLUDE", args[1]));
  const auto& big = args[1].elements();
  for (const Value& e : args[0].elements()) {
    if (std::find(big.begin(), big.end(), e) == big.end()) {
      return Value::Bool(false);
    }
  }
  return Value::Bool(true);
}

// CHOICE(x): an arbitrary element of a non-empty collection [Manna85]. We
// deterministically return the least element so rewrites stay reproducible.
Result<Value> Choice(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("CHOICE", args, 1));
  EDS_RETURN_IF_ERROR(WantCollection("CHOICE", args[0]));
  if (args[0].size() == 0) {
    return Status::RuntimeError("CHOICE: empty collection");
  }
  return args[0].elements().front();
}

Result<Value> Append(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("APPEND", args, 2));
  EDS_RETURN_IF_ERROR(WantSequence("APPEND", args[0]));
  EDS_RETURN_IF_ERROR(WantSequence("APPEND", args[1]));
  std::vector<Value> es = args[0].elements();
  const auto& bs = args[1].elements();
  es.insert(es.end(), bs.begin(), bs.end());
  return Rebuild(args[0].kind(), std::move(es));
}

Result<Value> Nth(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("NTH", args, 2));
  EDS_RETURN_IF_ERROR(WantSequence("NTH", args[0]));
  if (args[1].kind() != ValueKind::kInt) {
    return Status::TypeError("NTH: integer index required");
  }
  int64_t i = args[1].AsInt();
  if (i < 1 || static_cast<size_t>(i) > args[0].size()) {
    return Status::RuntimeError("NTH: index out of range");
  }
  return args[0].elements()[static_cast<size_t>(i - 1)];
}

Result<Value> First(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("FIRST", args, 1));
  EDS_RETURN_IF_ERROR(WantSequence("FIRST", args[0]));
  if (args[0].size() == 0) return Status::RuntimeError("FIRST: empty");
  return args[0].elements().front();
}

Result<Value> Last(const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity("LAST", args, 1));
  EDS_RETURN_IF_ERROR(WantSequence("LAST", args[0]));
  if (args[0].size() == 0) return Status::RuntimeError("LAST: empty");
  return args[0].elements().back();
}

Result<Value> MakeSet(const std::vector<Value>& args) {
  return Value::Set(args);
}
Result<Value> MakeBag(const std::vector<Value>& args) {
  return Value::Bag(args);
}
Result<Value> MakeList(const std::vector<Value>& args) {
  return Value::List(args);
}
Result<Value> MakeArray(const std::vector<Value>& args) {
  return Value::Array(args);
}

// The Convert functions: change the collection kind. Bag->Set removes
// duplicates (the Fig. 1 example).
Result<Value> ToKind(const char* name, ValueKind kind,
                     const std::vector<Value>& args) {
  EDS_RETURN_IF_ERROR(Arity(name, args, 1));
  EDS_RETURN_IF_ERROR(WantCollection(name, args[0]));
  return Rebuild(kind, args[0].elements());
}

}  // namespace

Status FunctionLibrary::Register(const std::string& name, PureFunction fn) {
  auto [it, inserted] = by_name_.emplace(ToUpperAscii(name), std::move(fn));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("function '" + name + "' already registered");
  }
  return Status::OK();
}

void FunctionLibrary::ForceRegister(const std::string& name, PureFunction fn) {
  by_name_[ToUpperAscii(name)] = std::move(fn);
}

bool FunctionLibrary::Contains(const std::string& name) const {
  return by_name_.count(ToUpperAscii(name)) > 0;
}

Result<Value> FunctionLibrary::Call(const std::string& name,
                                    const std::vector<Value>& args) const {
  auto it = by_name_.find(ToUpperAscii(name));
  if (it == by_name_.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  return it->second(args);
}

std::vector<std::string> FunctionLibrary::Names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [name, fn] : by_name_) out.push_back(name);
  return out;
}

void FunctionLibrary::InstallBuiltins(FunctionLibrary* lib) {
  auto reg = [lib](const char* name, PureFunction fn) {
    lib->ForceRegister(name, std::move(fn));
  };
  reg("ADD", Add);
  reg("SUB", Sub);
  reg("MUL", Mul);
  reg("DIV", Div);
  reg("MOD", Mod);
  reg("NEG", Neg);
  reg("ABS", Abs);
  reg("EQ", [](const std::vector<Value>& a) {
    return Comparison("EQ", [](int c) { return c == 0; }, a);
  });
  reg("NE", [](const std::vector<Value>& a) {
    return Comparison("NE", [](int c) { return c != 0; }, a);
  });
  reg("LT", [](const std::vector<Value>& a) {
    return Comparison("LT", [](int c) { return c < 0; }, a);
  });
  reg("LE", [](const std::vector<Value>& a) {
    return Comparison("LE", [](int c) { return c <= 0; }, a);
  });
  reg("GT", [](const std::vector<Value>& a) {
    return Comparison("GT", [](int c) { return c > 0; }, a);
  });
  reg("GE", [](const std::vector<Value>& a) {
    return Comparison("GE", [](int c) { return c >= 0; }, a);
  });
  reg("AND", LogicalAnd);
  reg("OR", LogicalOr);
  reg("NOT", LogicalNot);
  reg("CONCAT", Concat);
  reg("LENGTH", Length);
  reg("UPPER", Upper);
  reg("LOWER", Lower);
  reg("MEMBER", Member);
  reg("ISEMPTY", IsEmpty);
  reg("COUNT", Count);
  reg("INSERT", Insert);
  reg("REMOVE", Remove);
  reg("UNION", CollUnion);
  reg("INTERSECTION", Intersection);
  reg("DIFFERENCE", Difference);
  reg("INCLUDE", Include);
  reg("CHOICE", Choice);
  reg("APPEND", Append);
  reg("NTH", Nth);
  reg("FIRST", First);
  reg("LAST", Last);
  reg("MAKESET", MakeSet);
  reg("MAKEBAG", MakeBag);
  reg("MAKELIST", MakeList);
  reg("MAKEARRAY", MakeArray);
  reg("TOSET", [](const std::vector<Value>& a) {
    return ToKind("TOSET", ValueKind::kSet, a);
  });
  reg("TOBAG", [](const std::vector<Value>& a) {
    return ToKind("TOBAG", ValueKind::kBag, a);
  });
  reg("TOLIST", [](const std::vector<Value>& a) {
    return ToKind("TOLIST", ValueKind::kList, a);
  });
}

const FunctionLibrary& FunctionLibrary::Default() {
  static const FunctionLibrary* lib = [] {
    auto* l = new FunctionLibrary();
    InstallBuiltins(l);
    return l;
  }();
  return *lib;
}

}  // namespace eds::value
