#include "value/value.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace eds::value {

namespace internal {
thread_local uint64_t value_copies = 0;
}  // namespace internal

uint64_t ValueCopyCount() { return internal::value_copies; }

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull: return "NULL";
    case ValueKind::kBool: return "BOOLEAN";
    case ValueKind::kInt: return "INT";
    case ValueKind::kReal: return "REAL";
    case ValueKind::kString: return "CHAR";
    case ValueKind::kTuple: return "TUPLE";
    case ValueKind::kSet: return "SET";
    case ValueKind::kBag: return "BAG";
    case ValueKind::kList: return "LIST";
    case ValueKind::kArray: return "ARRAY";
    case ValueKind::kObjectRef: return "OBJECT";
  }
  return "?";
}

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = ValueKind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.kind_ = ValueKind::kInt;
  v.int_ = i;
  return v;
}

Value Value::Real(double d) {
  Value v;
  v.kind_ = ValueKind::kReal;
  v.real_ = d;
  return v;
}

Value Value::String(std::string s) {
  Value v;
  v.kind_ = ValueKind::kString;
  v.string_ = std::make_shared<const std::string>(std::move(s));
  return v;
}

Value Value::ObjectRef(uint64_t oid) {
  Value v;
  v.kind_ = ValueKind::kObjectRef;
  v.oid_ = oid;
  return v;
}

Value Value::Tuple(std::vector<Value> values) {
  Value v;
  v.kind_ = ValueKind::kTuple;
  auto data = std::make_shared<TupleData>();
  data->values = std::move(values);
  v.tuple_ = std::move(data);
  return v;
}

Value Value::NamedTuple(std::vector<std::string> names,
                        std::vector<Value> values) {
  assert(names.size() == values.size());
  Value v;
  v.kind_ = ValueKind::kTuple;
  auto data = std::make_shared<TupleData>();
  data->names = std::move(names);
  data->values = std::move(values);
  v.tuple_ = std::move(data);
  return v;
}

Value Value::Set(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  Value v;
  v.kind_ = ValueKind::kSet;
  v.elems_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

Value Value::Bag(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  Value v;
  v.kind_ = ValueKind::kBag;
  v.elems_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

Value Value::List(std::vector<Value> elements) {
  Value v;
  v.kind_ = ValueKind::kList;
  v.elems_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

Value Value::Array(std::vector<Value> elements) {
  Value v;
  v.kind_ = ValueKind::kArray;
  v.elems_ = std::make_shared<const std::vector<Value>>(std::move(elements));
  return v;
}

bool Value::AsBool() const {
  assert(kind_ == ValueKind::kBool);
  return bool_;
}

int64_t Value::AsInt() const {
  assert(kind_ == ValueKind::kInt);
  return int_;
}

double Value::AsReal() const {
  if (kind_ == ValueKind::kInt) return static_cast<double>(int_);
  assert(kind_ == ValueKind::kReal);
  return real_;
}

const std::string& Value::AsString() const {
  assert(kind_ == ValueKind::kString);
  return *string_;
}

uint64_t Value::AsObjectRef() const {
  assert(kind_ == ValueKind::kObjectRef);
  return oid_;
}

const TupleData& Value::tuple() const {
  assert(kind_ == ValueKind::kTuple);
  return *tuple_;
}

const Value* Value::FindField(const std::string& name) const {
  if (kind_ != ValueKind::kTuple) return nullptr;
  const TupleData& t = *tuple_;
  for (size_t i = 0; i < t.names.size(); ++i) {
    if (EqualsIgnoreCase(t.names[i], name)) return &t.values[i];
  }
  return nullptr;
}

const std::vector<Value>& Value::elements() const {
  assert(is_collection());
  return *elems_;
}

namespace {

int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull: return 0;
    case ValueKind::kBool: return 1;
    case ValueKind::kInt: return 2;
    case ValueKind::kReal: return 2;  // numerics compare together
    case ValueKind::kString: return 3;
    case ValueKind::kTuple: return 4;
    case ValueKind::kSet: return 5;
    case ValueKind::kBag: return 6;
    case ValueKind::kList: return 7;
    case ValueKind::kArray: return 8;
    case ValueKind::kObjectRef: return 9;
  }
  return 10;
}

int CompareVectors(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Compare(const Value& a, const Value& b) {
  int ra = KindRank(a.kind()), rb = KindRank(b.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBool:
      return Cmp(a.AsBool(), b.AsBool());
    case ValueKind::kInt:
    case ValueKind::kReal:
      if (a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt) {
        return Cmp(a.AsInt(), b.AsInt());
      }
      return Cmp(a.AsReal(), b.AsReal());
    case ValueKind::kString:
      return a.AsString().compare(b.AsString()) < 0
                 ? -1
                 : (a.AsString() == b.AsString() ? 0 : 1);
    case ValueKind::kTuple:
      return CompareVectors(a.tuple().values, b.tuple().values);
    case ValueKind::kSet:
    case ValueKind::kBag:
    case ValueKind::kList:
    case ValueKind::kArray:
      return CompareVectors(a.elements(), b.elements());
    case ValueKind::kObjectRef:
      return Cmp(a.AsObjectRef(), b.AsObjectRef());
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) { return Compare(a, b) == 0; }

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return os << "NULL";
    case ValueKind::kBool:
      return os << (v.AsBool() ? "TRUE" : "FALSE");
    case ValueKind::kInt:
      return os << v.AsInt();
    case ValueKind::kReal:
      return os << v.AsReal();
    case ValueKind::kString:
      return os << '\'' << v.AsString() << '\'';
    case ValueKind::kObjectRef:
      return os << "<oid:" << v.AsObjectRef() << '>';
    case ValueKind::kTuple: {
      const TupleData& t = v.tuple();
      os << '(';
      for (size_t i = 0; i < t.values.size(); ++i) {
        if (i > 0) os << ", ";
        if (!t.names.empty()) os << t.names[i] << ": ";
        os << t.values[i];
      }
      return os << ')';
    }
    case ValueKind::kSet:
    case ValueKind::kBag: {
      os << (v.kind() == ValueKind::kSet ? "{" : "{|");
      const auto& es = v.elements();
      for (size_t i = 0; i < es.size(); ++i) {
        if (i > 0) os << ", ";
        os << es[i];
      }
      return os << (v.kind() == ValueKind::kSet ? "}" : "|}");
    }
    case ValueKind::kList:
    case ValueKind::kArray: {
      os << '[';
      const auto& es = v.elements();
      for (size_t i = 0; i < es.size(); ++i) {
        if (i > 0) os << ", ";
        os << es[i];
      }
      return os << ']';
    }
  }
  return os;
}

}  // namespace eds::value
