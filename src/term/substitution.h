#ifndef EDS_TERM_SUBSTITUTION_H_
#define EDS_TERM_SUBSTITUTION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::term {

// A binding environment produced by pattern matching and extended by rule
// methods. Ordinary variables bind to one term; collection variables bind to
// a sequence of terms (possibly empty).
class Bindings {
 public:
  Bindings() = default;

  // Binds `name` to `t`; fails if already bound to a different term (the
  // non-linear-pattern case: F(x, x) requires both occurrences equal).
  bool BindVar(const std::string& name, TermRef t);
  bool BindCollVar(const std::string& name, TermList ts);

  // Unconditional (re)binding, used by rule methods to publish outputs.
  void SetVar(const std::string& name, TermRef t);
  void SetCollVar(const std::string& name, TermList ts);

  const TermRef* LookupVar(const std::string& name) const;
  const TermList* LookupCollVar(const std::string& name) const;

  bool HasVar(const std::string& name) const {
    return vars_.count(name) > 0;
  }
  bool HasCollVar(const std::string& name) const {
    return coll_vars_.count(name) > 0;
  }

  size_t var_count() const { return vars_.size(); }
  size_t coll_var_count() const { return coll_vars_.size(); }

  const std::map<std::string, TermRef>& vars() const { return vars_; }
  const std::map<std::string, TermList>& coll_vars() const {
    return coll_vars_;
  }

  // "{x := F(a), y* := [b, c]}" for traces and tests.
  std::string ToString() const;

 private:
  std::map<std::string, TermRef> vars_;
  std::map<std::string, TermList> coll_vars_;
};

// Instantiates `t` under `env`: variables are replaced by their bindings and
// collection variables are spliced into the surrounding argument list.
// Unbound variables are an error (rules are checked so RHS variables are
// bound by the LHS or by a method); a collection variable in a non-argument
// position is an error.
Result<TermRef> ApplySubstitution(const TermRef& t, const Bindings& env);

}  // namespace eds::term

#endif  // EDS_TERM_SUBSTITUTION_H_
