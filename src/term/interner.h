#ifndef EDS_TERM_INTERNER_H_
#define EDS_TERM_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "term/term.h"

namespace eds::term {

// Hash-cons table behind the Term factories. Every construction goes
// through Intern(), which returns an existing node when a structurally
// equal one is still alive, so structurally equal terms built while their
// twin lives are *pointer-identical*. That canonical identity is what lets
// the rewrite engine replace deep hashing/equality with pointer reads.
//
// Design notes:
//   - The table holds weak_ptrs, so it never extends a term's lifetime;
//     dead entries linger as tombstones (occasionally reused in place by a
//     hash-equal newcomer) until an amortized compacting sweep reclaims
//     them once inserts outgrow the live population.
//   - Candidate comparison is *shallow*: kind, payload, and child
//     POINTERS. Children were interned first (construction is bottom-up),
//     so shallow identity implies deep structural identity.
//   - Constants are deduped by their exact payload via value::Compare,
//     which treats Int(2) and Real(2.0) as equal but execution semantics
//     may not (integer vs. real arithmetic) — so value-equivalent
//     constants of different kinds can both survive as distinct canonical
//     nodes. The interner is a performance device, not a correctness
//     device: term::Equals keeps a deep fallback for exactly this case,
//     and imperfect dedup is always safe.
//   - Global() is a leaky singleton (like the parser's operator tables):
//     terms may be destroyed during static teardown, and destroying a
//     Term never touches the table, so there is no order-of-destruction
//     hazard.
//   - The table is sharded by structural hash (kShardCount bucket groups,
//     each behind its own mutex) so concurrent term construction from the
//     query-service worker pool does not serialize on one lock. Children
//     are interned before parents regardless of thread, so the shallow
//     pointer-equality comparison stays exact under concurrency; two
//     threads racing to intern the same structure serialize on that
//     structure's shard and the loser gets a hit. Single-threaded cost of
//     the sharding is one shift/mask to pick the shard.
class Interner {
 public:
  static Interner& Global();

  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  // Canonicalizing constructor used by the Term factories. `name` is the
  // variable name or the (already upper-cased) functor; `args` must all be
  // interned (or testing clones, which simply never unify with anything).
  TermRef Intern(TermKind kind, value::Value value, std::string name,
                 TermList args);

  struct Stats {
    size_t hits = 0;     // constructions answered by an existing node
    size_t misses = 0;   // constructions that allocated a new node
    size_t entries = 0;  // table entries (live + not-yet-swept dead)
    size_t sweeps = 0;   // bulk sweeps performed
  };
  Stats GetStats();

  // Lock-free running count of term-node allocations (== misses). The
  // query governor's node ceiling diffs this against a per-query baseline;
  // an atomic copy of the locked counter keeps the governor's hot checks
  // off the interner mutex.
  uint64_t ApproxAllocated() const {
    return approx_allocated_.load(std::memory_order_relaxed);
  }

  // Drops every expired entry now; returns how many were erased.
  size_t Sweep();

  // Testing hook: force every lookup into one bucket, simulating total
  // hash collision. Dedup stays exact (candidates are compared
  // structurally) — only table performance degrades — so flipping this
  // mid-process is safe.
  static void SetDegenerateBucketsForTesting(bool on);

  // Testing hook behind term::testing::CloneWithHashForTesting.
  static TermRef CloneWithHashForTesting(const TermRef& t,
                                         uint64_t forced_hash);

 private:
  // One slot of the flat linear-probe table. Each shard's table is
  // open-addressed (power-of-two capacity, home index = structural hash &
  // mask) rather than a node-based map: term construction is the hottest
  // path in the whole system — the executor churns through millions of
  // short-lived terms — and a flat table makes a fresh intern
  // allocation-free beyond the term itself.
  struct Slot {
    uint64_t hash = 0;
    std::weak_ptr<const Term> term;
    bool used = false;  // distinguishes never-used from expired slots
  };

  // A bucket group: one mutex guarding one open-addressed table. Terms are
  // assigned to shards by the *top* bits of their structural hash so the
  // in-shard home index (low bits) stays well distributed.
  static constexpr size_t kShardBits = 4;
  static constexpr size_t kShardCount = 1u << kShardBits;
  struct Shard {
    std::mutex mu;
    std::vector<Slot> slots;  // empty until the first Intern() in the shard
    Stats stats;              // entries == used slots (live + unswept dead)
    size_t next_sweep = 1024;
  };

  static size_t ShardIndex(uint64_t hash) {
    return static_cast<size_t>(hash >> (64 - kShardBits));
  }

  // Compacting rehash of one shard: drops every expired entry, resizes to
  // fit the live population, and reinserts. Doubles as both the amortized
  // sweep and the load-factor growth path. Returns how many dead entries
  // were erased. Requires the shard's mutex to be held.
  static size_t SweepShardLocked(Shard& shard);

  Shard shards_[kShardCount];
  std::atomic<uint64_t> approx_allocated_{0};  // == sum of shard misses

  static std::atomic<bool> degenerate_buckets_;
};

}  // namespace eds::term

#endif  // EDS_TERM_INTERNER_H_
