#include "term/substitution.h"

#include <sstream>

namespace eds::term {

bool Bindings::BindVar(const std::string& name, TermRef t) {
  auto it = vars_.find(name);
  if (it != vars_.end()) return Equals(it->second, t);
  vars_.emplace(name, std::move(t));
  return true;
}

bool Bindings::BindCollVar(const std::string& name, TermList ts) {
  auto it = coll_vars_.find(name);
  if (it != coll_vars_.end()) {
    if (it->second.size() != ts.size()) return false;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (!Equals(it->second[i], ts[i])) return false;
    }
    return true;
  }
  coll_vars_.emplace(name, std::move(ts));
  return true;
}

void Bindings::SetVar(const std::string& name, TermRef t) {
  vars_[name] = std::move(t);
}

void Bindings::SetCollVar(const std::string& name, TermList ts) {
  coll_vars_[name] = std::move(ts);
}

const TermRef* Bindings::LookupVar(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : &it->second;
}

const TermList* Bindings::LookupCollVar(const std::string& name) const {
  auto it = coll_vars_.find(name);
  return it == coll_vars_.end() ? nullptr : &it->second;
}

std::string Bindings::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, t] : vars_) {
    if (!first) os << ", ";
    first = false;
    os << name << " := " << t;
  }
  for (const auto& [name, ts] : coll_vars_) {
    if (!first) os << ", ";
    first = false;
    os << name << "* := [";
    for (size_t i = 0; i < ts.size(); ++i) {
      if (i > 0) os << ", ";
      os << ts[i];
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

Result<TermRef> ApplySubstitution(const TermRef& t, const Bindings& env) {
  // A term with no variables (including '?'-functor variables) is its own
  // substitution instance; skip the walk. This is the common case for
  // ground right-hand-side fragments.
  if (t->pattern_free()) return t;
  switch (t->kind()) {
    case TermKind::kConstant:
      return t;
    case TermKind::kVariable: {
      const TermRef* bound = env.LookupVar(t->var_name());
      if (bound == nullptr) {
        return Status::InvalidArgument("unbound variable '" + t->var_name() +
                                       "' in rule right-hand side");
      }
      return *bound;
    }
    case TermKind::kCollectionVariable:
      return Status::InvalidArgument(
          "collection variable '" + t->var_name() +
          "*' used outside an argument list");
    case TermKind::kApply: {
      // Functor variables (?F) resolve to their bound functor name.
      std::string functor = t->functor();
      bool functor_changed = false;
      if (!functor.empty() && functor.front() == '?') {
        const TermRef* bound = env.LookupVar(functor);
        if (bound == nullptr || !(*bound)->is_constant() ||
            (*bound)->constant().kind() != value::ValueKind::kString) {
          return Status::InvalidArgument("unbound functor variable '" +
                                         functor + "'");
        }
        functor = (*bound)->constant().AsString();
        functor_changed = true;
      }
      TermList args;
      args.reserve(t->arity());
      bool changed = functor_changed;
      for (const TermRef& a : t->args()) {
        if (a->is_collection_variable()) {
          const TermList* seq = env.LookupCollVar(a->var_name());
          if (seq == nullptr) {
            return Status::InvalidArgument("unbound collection variable '" +
                                           a->var_name() +
                                           "*' in rule right-hand side");
          }
          args.insert(args.end(), seq->begin(), seq->end());
          changed = true;
          continue;
        }
        EDS_ASSIGN_OR_RETURN(TermRef sub, ApplySubstitution(a, env));
        if (sub.get() != a.get()) changed = true;
        args.push_back(std::move(sub));
      }
      if (!changed) return t;
      return Term::Apply(std::move(functor), std::move(args));
    }
  }
  return Status::Internal("unreachable term kind");
}

}  // namespace eds::term
