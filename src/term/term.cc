#include "term/term.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "common/strings.h"

namespace eds::term {

namespace {

struct TermBuilder : Term {};

std::shared_ptr<Term> NewTerm() { return std::make_shared<TermBuilder>(); }

// Maps canonical functors to their infix spelling for printing.
const std::map<std::string, std::string>& InfixOps() {
  static const auto* ops = new std::map<std::string, std::string>{
      {kEq, "="},   {kNe, "<>"},  {kLt, "<"},  {kLe, "<="},
      {kGt, ">"},   {kGe, ">="},  {kAnd, "AND"}, {kOr, "OR"},
      {"ADD", "+"}, {"SUB", "-"}, {"MUL", "*"},  {"DIV", "/"},
  };
  return *ops;
}

}  // namespace

TermRef Term::Constant(value::Value v) {
  auto t = NewTerm();
  t->kind_ = TermKind::kConstant;
  t->value_ = std::move(v);
  return t;
}

TermRef Term::Int(int64_t i) { return Constant(value::Value::Int(i)); }
TermRef Term::Real(double d) { return Constant(value::Value::Real(d)); }
TermRef Term::Str(std::string s) {
  return Constant(value::Value::String(std::move(s)));
}
TermRef Term::Bool(bool b) { return Constant(value::Value::Bool(b)); }

TermRef Term::Var(std::string name) {
  auto t = NewTerm();
  t->kind_ = TermKind::kVariable;
  t->name_ = std::move(name);
  return t;
}

TermRef Term::CollVar(std::string name) {
  auto t = NewTerm();
  t->kind_ = TermKind::kCollectionVariable;
  t->name_ = std::move(name);
  return t;
}

TermRef Term::Apply(std::string functor, TermList args) {
  auto t = NewTerm();
  t->kind_ = TermKind::kApply;
  t->name_ = ToUpperAscii(functor);
  t->args_ = std::move(args);
  return t;
}

TermRef Term::And(TermRef a, TermRef b) {
  return Apply(kAnd, {std::move(a), std::move(b)});
}
TermRef Term::Or(TermRef a, TermRef b) {
  return Apply(kOr, {std::move(a), std::move(b)});
}
TermRef Term::Not(TermRef a) { return Apply(kNot, {std::move(a)}); }
TermRef Term::Eq(TermRef a, TermRef b) {
  return Apply(kEq, {std::move(a), std::move(b)});
}
TermRef Term::Attr(int64_t rel, int64_t attr) {
  return Apply(kAttr, {Int(rel), Int(attr)});
}
TermRef Term::Relation(std::string name) {
  return Apply(kRelation, {Str(std::move(name))});
}

bool Equals(const TermRef& a, const TermRef& b) { return Compare(a, b) == 0; }

int Compare(const TermRef& a, const TermRef& b) {
  if (a.get() == b.get()) return 0;
  if (a == nullptr || b == nullptr) return a == nullptr ? -1 : 1;
  if (a->kind() != b->kind()) {
    return static_cast<int>(a->kind()) < static_cast<int>(b->kind()) ? -1 : 1;
  }
  switch (a->kind()) {
    case TermKind::kConstant:
      return value::Compare(a->constant(), b->constant());
    case TermKind::kVariable:
    case TermKind::kCollectionVariable: {
      int c = a->var_name().compare(b->var_name());
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case TermKind::kApply: {
      int c = a->functor().compare(b->functor());
      if (c != 0) return c < 0 ? -1 : 1;
      size_t n = std::min(a->arity(), b->arity());
      for (size_t i = 0; i < n; ++i) {
        int ci = Compare(a->arg(i), b->arg(i));
        if (ci != 0) return ci;
      }
      if (a->arity() != b->arity()) return a->arity() < b->arity() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

uint64_t Hash(const TermRef& t) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= kPrime;
  };
  if (t == nullptr) return h;
  mix(static_cast<uint64_t>(t->kind()));
  switch (t->kind()) {
    case TermKind::kConstant: {
      // Hash via the printed form; constants are small.
      for (char c : t->constant().ToString()) mix(static_cast<uint8_t>(c));
      break;
    }
    case TermKind::kVariable:
    case TermKind::kCollectionVariable:
      for (char c : t->var_name()) mix(static_cast<uint8_t>(c));
      break;
    case TermKind::kApply:
      for (char c : t->functor()) mix(static_cast<uint8_t>(c));
      for (const TermRef& a : t->args()) mix(Hash(a));
      break;
  }
  return h;
}

bool IsGround(const TermRef& t) {
  if (t->is_variable() || t->is_collection_variable()) return false;
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) {
      if (!IsGround(a)) return false;
    }
  }
  return true;
}

namespace {

void CollectVarsRec(const TermRef& t, std::vector<std::string>* vars,
                    std::vector<std::string>* coll_vars) {
  auto add = [](std::vector<std::string>* out, const std::string& name) {
    if (out != nullptr &&
        std::find(out->begin(), out->end(), name) == out->end()) {
      out->push_back(name);
    }
  };
  switch (t->kind()) {
    case TermKind::kVariable:
      add(vars, t->var_name());
      break;
    case TermKind::kCollectionVariable:
      add(coll_vars, t->var_name());
      break;
    case TermKind::kApply:
      // Functor variables (?F) count as ordinary variables for binding
      // analysis.
      if (!t->functor().empty() && t->functor().front() == '?') {
        add(vars, t->functor());
      }
      for (const TermRef& a : t->args()) CollectVarsRec(a, vars, coll_vars);
      break;
    case TermKind::kConstant:
      break;
  }
}

}  // namespace

void CollectVariables(const TermRef& t, std::vector<std::string>* vars,
                      std::vector<std::string>* coll_vars) {
  CollectVarsRec(t, vars, coll_vars);
}

size_t CountNodes(const TermRef& t) {
  size_t n = 1;
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) n += CountNodes(a);
  }
  return n;
}

TermRef WithArgs(const TermRef& t, TermList args) {
  bool same = args.size() == t->arity();
  if (same) {
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].get() != t->arg(i).get()) {
        same = false;
        break;
      }
    }
  }
  if (same) return t;
  return Term::Apply(t->functor(), std::move(args));
}

TermList Conjuncts(const TermRef& t) {
  TermList out;
  if (t->IsApply(kAnd, 2)) {
    TermList left = Conjuncts(t->arg(0));
    TermList right = Conjuncts(t->arg(1));
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
  } else {
    out.push_back(t);
  }
  return out;
}

TermRef MakeConjunction(const TermList& conjuncts) {
  if (conjuncts.empty()) return Term::True();
  TermRef acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Term::And(acc, conjuncts[i]);
  }
  return acc;
}

namespace {

void Print(std::ostream& os, const TermRef& t) {
  switch (t->kind()) {
    case TermKind::kConstant:
      os << t->constant();
      return;
    case TermKind::kVariable:
      os << t->var_name();
      return;
    case TermKind::kCollectionVariable:
      os << t->var_name() << '*';
      return;
    case TermKind::kApply:
      break;
  }
  const std::string& f = t->functor();
  // ATTR(i, j) prints as $i.j ('$'-prefixed so the parser can reread it;
  // the paper writes the same references as i.j).
  if (f == kAttr && t->arity() == 2 && t->arg(0)->is_constant() &&
      t->arg(1)->is_constant()) {
    os << '$' << t->arg(0)->constant() << '.' << t->arg(1)->constant();
    return;
  }
  auto infix = InfixOps().find(f);
  if (infix != InfixOps().end() && t->arity() == 2) {
    os << '(';
    Print(os, t->arg(0));
    os << ' ' << infix->second << ' ';
    Print(os, t->arg(1));
    os << ')';
    return;
  }
  os << f << '(';
  for (size_t i = 0; i < t->arity(); ++i) {
    if (i > 0) os << ", ";
    Print(os, t->arg(i));
  }
  os << ')';
}

}  // namespace

std::string Term::ToString() const {
  std::ostringstream os;
  // Wrap `this` in a non-owning shared_ptr for the recursive printer.
  TermRef self(this, [](const Term*) {});
  Print(os, self);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TermRef& t) {
  if (t == nullptr) return os << "<null>";
  Print(os, t);
  return os;
}

}  // namespace eds::term
