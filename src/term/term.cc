#include "term/term.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/strings.h"
#include "term/interner.h"

namespace eds::term {

namespace {

// Maps canonical functors to their infix spelling for printing.
const std::map<std::string, std::string>& InfixOps() {
  static const auto* ops = new std::map<std::string, std::string>{
      {kEq, "="},   {kNe, "<>"},  {kLt, "<"},  {kLe, "<="},
      {kGt, ">"},   {kGe, ">="},  {kAnd, "AND"}, {kOr, "OR"},
      {"ADD", "+"}, {"SUB", "-"}, {"MUL", "*"},  {"DIV", "/"},
  };
  return *ops;
}

}  // namespace

TermRef Term::Constant(value::Value v) {
  return Interner::Global().Intern(TermKind::kConstant, std::move(v), {}, {});
}

TermRef Term::Int(int64_t i) { return Constant(value::Value::Int(i)); }
TermRef Term::Real(double d) { return Constant(value::Value::Real(d)); }
TermRef Term::Str(std::string s) {
  return Constant(value::Value::String(std::move(s)));
}
TermRef Term::Bool(bool b) { return Constant(value::Value::Bool(b)); }

TermRef Term::Var(std::string name) {
  return Interner::Global().Intern(TermKind::kVariable, {}, std::move(name),
                                   {});
}

TermRef Term::CollVar(std::string name) {
  return Interner::Global().Intern(TermKind::kCollectionVariable, {},
                                   std::move(name), {});
}

TermRef Term::Apply(std::string functor, TermList args) {
  return Interner::Global().Intern(TermKind::kApply, {},
                                   ToUpperAscii(std::move(functor)),
                                   std::move(args));
}

TermRef Term::And(TermRef a, TermRef b) {
  return Apply(kAnd, {std::move(a), std::move(b)});
}
TermRef Term::Or(TermRef a, TermRef b) {
  return Apply(kOr, {std::move(a), std::move(b)});
}
TermRef Term::Not(TermRef a) { return Apply(kNot, {std::move(a)}); }
TermRef Term::Eq(TermRef a, TermRef b) {
  return Apply(kEq, {std::move(a), std::move(b)});
}
TermRef Term::Attr(int64_t rel, int64_t attr) {
  return Apply(kAttr, {Int(rel), Int(attr)});
}
TermRef Term::Relation(std::string name) {
  return Apply(kRelation, {Str(std::move(name))});
}

bool Equals(const TermRef& a, const TermRef& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  // Hash-consing makes the pointer compare above the common success path
  // and the cached-hash compare the common failure path. Distinct nodes
  // with equal hashes (value-equivalent constants such as 2 vs 2.0, which
  // intern separately by exact payload, or true collisions) still need the
  // structural walk.
  if (a->structural_hash() != b->structural_hash()) return false;
  return DeepEquals(a, b);
}

bool DeepEquals(const TermRef& a, const TermRef& b) {
  if (a.get() == b.get()) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case TermKind::kConstant:
      return value::Compare(a->constant(), b->constant()) == 0;
    case TermKind::kVariable:
    case TermKind::kCollectionVariable:
      return a->var_name() == b->var_name();
    case TermKind::kApply: {
      if (a->functor() != b->functor() || a->arity() != b->arity()) {
        return false;
      }
      for (size_t i = 0; i < a->arity(); ++i) {
        if (!Equals(a->arg(i), b->arg(i))) return false;
      }
      return true;
    }
  }
  return false;
}

int Compare(const TermRef& a, const TermRef& b) {
  if (a.get() == b.get()) return 0;
  if (a == nullptr || b == nullptr) return a == nullptr ? -1 : 1;
  if (a->kind() != b->kind()) {
    return static_cast<int>(a->kind()) < static_cast<int>(b->kind()) ? -1 : 1;
  }
  switch (a->kind()) {
    case TermKind::kConstant:
      return value::Compare(a->constant(), b->constant());
    case TermKind::kVariable:
    case TermKind::kCollectionVariable: {
      int c = a->var_name().compare(b->var_name());
      return c < 0 ? -1 : (c == 0 ? 0 : 1);
    }
    case TermKind::kApply: {
      int c = a->functor().compare(b->functor());
      if (c != 0) return c < 0 ? -1 : 1;
      size_t n = std::min(a->arity(), b->arity());
      for (size_t i = 0; i < n; ++i) {
        int ci = Compare(a->arg(i), b->arg(i));
        if (ci != 0) return ci;
      }
      if (a->arity() != b->arity()) return a->arity() < b->arity() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

inline void Mix(uint64_t* h, uint64_t x) {
  *h ^= x;
  *h *= kFnvPrime;
}

}  // namespace

namespace internal {

// Hashes a constant payload consistently with value::Compare's equivalence
// classes: kInt and kReal both hash through the widened double (so 2 and
// 2.0 collide, as Compare demands), -0.0 collapses to +0.0, and tuple
// field names are ignored (Compare orders tuples by values alone).
uint64_t HashConstantValue(const value::Value& v) {
  uint64_t h = kFnvOffset;
  using value::ValueKind;
  switch (v.kind()) {
    case ValueKind::kNull:
      Mix(&h, 1);
      break;
    case ValueKind::kBool:
      Mix(&h, 2);
      Mix(&h, v.AsBool() ? 1 : 0);
      break;
    case ValueKind::kInt:
    case ValueKind::kReal: {
      Mix(&h, 3);
      double d = v.AsReal();
      if (d == 0) d = 0;  // fold -0.0 into +0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      Mix(&h, bits);
      break;
    }
    case ValueKind::kString:
      Mix(&h, 4);
      for (char c : v.AsString()) Mix(&h, static_cast<uint8_t>(c));
      break;
    case ValueKind::kTuple:
      Mix(&h, 5);
      for (const value::Value& f : v.tuple().values) {
        Mix(&h, HashConstantValue(f));
      }
      break;
    case ValueKind::kSet:
    case ValueKind::kBag:
    case ValueKind::kList:
    case ValueKind::kArray:
      Mix(&h, 6 + static_cast<uint64_t>(v.kind()) -
                  static_cast<uint64_t>(ValueKind::kSet));
      for (const value::Value& e : v.elements()) {
        Mix(&h, HashConstantValue(e));
      }
      break;
    case ValueKind::kObjectRef:
      Mix(&h, 10);
      Mix(&h, v.AsObjectRef());
      break;
  }
  return h;
}

uint64_t HashNode(TermKind kind, const std::string& name,
                  const value::Value& v, const uint64_t* child_hashes,
                  size_t n) {
  uint64_t h = kFnvOffset;
  Mix(&h, static_cast<uint64_t>(kind));
  switch (kind) {
    case TermKind::kConstant:
      Mix(&h, HashConstantValue(v));
      break;
    case TermKind::kVariable:
    case TermKind::kCollectionVariable:
      for (char c : name) Mix(&h, static_cast<uint8_t>(c));
      break;
    case TermKind::kApply:
      for (char c : name) Mix(&h, static_cast<uint8_t>(c));
      for (size_t i = 0; i < n; ++i) Mix(&h, child_hashes[i]);
      break;
  }
  return h;
}

}  // namespace internal

uint64_t Hash(const TermRef& t) {
  return t == nullptr ? kFnvOffset : t->structural_hash();
}

uint64_t DeepHash(const TermRef& t) {
  if (t == nullptr) return kFnvOffset;
  std::vector<uint64_t> child_hashes;
  if (t->is_apply()) {
    child_hashes.reserve(t->arity());
    for (const TermRef& a : t->args()) child_hashes.push_back(DeepHash(a));
  }
  return internal::HashNode(t->kind(),
                            t->is_apply() ? t->functor() : t->var_name(),
                            t->constant(), child_hashes.data(),
                            child_hashes.size());
}

bool IsGround(const TermRef& t) { return t->ground(); }

bool DeepIsGround(const TermRef& t) {
  if (t->is_variable() || t->is_collection_variable()) return false;
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) {
      if (!DeepIsGround(a)) return false;
    }
  }
  return true;
}

namespace {

void CollectVarsRec(const TermRef& t, std::vector<std::string>* vars,
                    std::vector<std::string>* coll_vars) {
  auto add = [](std::vector<std::string>* out, const std::string& name) {
    if (out != nullptr &&
        std::find(out->begin(), out->end(), name) == out->end()) {
      out->push_back(name);
    }
  };
  switch (t->kind()) {
    case TermKind::kVariable:
      add(vars, t->var_name());
      break;
    case TermKind::kCollectionVariable:
      add(coll_vars, t->var_name());
      break;
    case TermKind::kApply:
      // Functor variables (?F) count as ordinary variables for binding
      // analysis.
      if (!t->functor().empty() && t->functor().front() == '?') {
        add(vars, t->functor());
      }
      for (const TermRef& a : t->args()) CollectVarsRec(a, vars, coll_vars);
      break;
    case TermKind::kConstant:
      break;
  }
}

}  // namespace

void CollectVariables(const TermRef& t, std::vector<std::string>* vars,
                      std::vector<std::string>* coll_vars) {
  CollectVarsRec(t, vars, coll_vars);
}

size_t CountNodes(const TermRef& t) { return t->node_count(); }

size_t DeepCountNodes(const TermRef& t) {
  size_t n = 1;
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) n += DeepCountNodes(a);
  }
  return n;
}

namespace testing {

TermRef CloneWithHashForTesting(const TermRef& t, uint64_t forced_hash) {
  return Interner::CloneWithHashForTesting(t, forced_hash);
}

}  // namespace testing

TermRef WithArgs(const TermRef& t, TermList args) {
  bool same = args.size() == t->arity();
  if (same) {
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].get() != t->arg(i).get()) {
        same = false;
        break;
      }
    }
  }
  if (same) return t;
  return Term::Apply(t->functor(), std::move(args));
}

TermList Conjuncts(const TermRef& t) {
  TermList out;
  if (t->IsApply(kAnd, 2)) {
    TermList left = Conjuncts(t->arg(0));
    TermList right = Conjuncts(t->arg(1));
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
  } else {
    out.push_back(t);
  }
  return out;
}

TermRef MakeConjunction(const TermList& conjuncts) {
  if (conjuncts.empty()) return Term::True();
  TermRef acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Term::And(acc, conjuncts[i]);
  }
  return acc;
}

namespace {

// Term-constant printing diverges from value::operator<< in two ways so
// that printed terms re-parse to the identical interned node (the
// serialization contract the persistent plan cache depends on):
//   * string quotes are escaped by '' doubling, matching the lexer;
//   * reals print with shortest round-trip precision in fixed notation
//     (the lexer reads no exponents), with a ".0" suffix on whole values
//     so they come back as reals, not ints.
// Other value kinds (collections, objects) never survive a round-trip and
// keep the plain value rendering.
void PrintConstant(std::ostream& os, const value::Value& v) {
  switch (v.kind()) {
    case value::ValueKind::kString: {
      os << '\'';
      for (char c : v.AsString()) {
        if (c == '\'') os << '\'';
        os << c;
      }
      os << '\'';
      return;
    }
    case value::ValueKind::kReal: {
      const double d = v.AsReal();
      if (!std::isfinite(d)) {
        os << v;  // nan/inf cannot round-trip; keep the legacy rendering
        return;
      }
      // Shortest fixed-notation digits that parse back to exactly d. Every
      // finite double has a finite decimal expansion, so this terminates.
      char buf[384];
      auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d,
                                     std::chars_format::fixed);
      if (ec != std::errc()) {
        os << v;
        return;
      }
      std::string_view s(buf, static_cast<size_t>(end - buf));
      os << s;
      if (s.find('.') == std::string_view::npos) os << ".0";
      return;
    }
    default:
      os << v;
      return;
  }
}

void Print(std::ostream& os, const TermRef& t) {
  switch (t->kind()) {
    case TermKind::kConstant:
      PrintConstant(os, t->constant());
      return;
    case TermKind::kVariable:
      os << t->var_name();
      return;
    case TermKind::kCollectionVariable:
      os << t->var_name() << '*';
      return;
    case TermKind::kApply:
      break;
  }
  const std::string& f = t->functor();
  // ATTR(i, j) prints as $i.j ('$'-prefixed so the parser can reread it;
  // the paper writes the same references as i.j). Only for non-negative
  // integer indices — the lexer reads nothing else after '$', so malformed
  // ATTRs fall through to the functor form, which always re-parses.
  auto attr_index = [](const TermRef& a) {
    return a->is_constant() &&
           a->constant().kind() == value::ValueKind::kInt &&
           a->constant().AsInt() >= 0;
  };
  if (f == kAttr && t->arity() == 2 && attr_index(t->arg(0)) &&
      attr_index(t->arg(1))) {
    os << '$' << t->arg(0)->constant() << '.' << t->arg(1)->constant();
    return;
  }
  auto infix = InfixOps().find(f);
  if (infix != InfixOps().end() && t->arity() == 2) {
    os << '(';
    Print(os, t->arg(0));
    os << ' ' << infix->second << ' ';
    Print(os, t->arg(1));
    os << ')';
    return;
  }
  os << f << '(';
  for (size_t i = 0; i < t->arity(); ++i) {
    if (i > 0) os << ", ";
    Print(os, t->arg(i));
  }
  os << ')';
}

}  // namespace

std::string Term::ToString() const {
  std::ostringstream os;
  // Wrap `this` in a non-owning shared_ptr for the recursive printer.
  TermRef self(this, [](const Term*) {});
  Print(os, self);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TermRef& t) {
  if (t == nullptr) return os << "<null>";
  Print(os, t);
  return os;
}

}  // namespace eds::term
