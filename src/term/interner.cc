#include "term/interner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "gov/failpoint.h"

namespace eds::term {

namespace {

// Gives interner.cc access to Term's protected default constructor, the
// same way term.cc used to build nodes before construction moved here.
struct TermBuilder : Term {};

// Smallest per-shard table ever allocated. Power of two; sized so
// steady-state programs (parser operator tables, built-in rule libraries, a
// live query) rarely rehash. 512 × 16 shards matches the footprint of the
// old single 4096-slot table within a factor of two.
constexpr size_t kMinCapacity = 512;

}  // namespace

std::atomic<bool> Interner::degenerate_buckets_{false};

Interner& Interner::Global() {
  // Leaky: never destroyed, so factories stay valid during static teardown.
  static Interner* global = new Interner();
  return *global;
}

void Interner::SetDegenerateBucketsForTesting(bool on) {
  degenerate_buckets_.store(on, std::memory_order_relaxed);
}

namespace {

// Shallow structural identity against an existing interned node: child
// comparison is by pointer, which is exact because children are already
// canonical.
bool ShallowEquals(const Term& cand, TermKind kind, const value::Value& value,
                   const std::string& name, const TermList& args) {
  if (cand.kind() != kind) return false;
  switch (kind) {
    case TermKind::kConstant:
      return value::Compare(cand.constant(), value) == 0 &&
             cand.constant().kind() == value.kind();
    case TermKind::kVariable:
    case TermKind::kCollectionVariable:
      return cand.var_name() == name;
    case TermKind::kApply: {
      if (cand.functor() != name || cand.arity() != args.size()) return false;
      for (size_t i = 0; i < args.size(); ++i) {
        if (cand.arg(i).get() != args[i].get()) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

TermRef Interner::Intern(TermKind kind, value::Value value, std::string name,
                         TermList args) {
  uint64_t child_hashes_buf[8];
  std::vector<uint64_t> child_hashes_vec;
  const uint64_t* child_hashes = child_hashes_buf;
  if (args.size() <= 8) {
    for (size_t i = 0; i < args.size(); ++i) {
      child_hashes_buf[i] = args[i]->structural_hash();
    }
  } else {
    child_hashes_vec.reserve(args.size());
    for (const TermRef& a : args) {
      child_hashes_vec.push_back(a->structural_hash());
    }
    child_hashes = child_hashes_vec.data();
  }
  const uint64_t hash =
      internal::HashNode(kind, name, value, child_hashes, args.size());
  // Degenerate test mode collapses both the shard choice and the in-shard
  // home index, simulating total hash collision across the whole table.
  const bool degenerate = degenerate_buckets_.load(std::memory_order_relaxed);
  const uint64_t home = degenerate ? 0 : hash;
  Shard& shard = shards_[degenerate ? 0 : ShardIndex(hash)];

  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.slots.empty()) shard.slots.assign(kMinCapacity, Slot{});
  const size_t mask = shard.slots.size() - 1;
  size_t idx = home & mask;
  size_t reuse = std::numeric_limits<size_t>::max();
  for (;;) {
    Slot& s = shard.slots[idx];
    if (!s.used) break;  // end of this probe chain: the term is not interned
    if (s.hash == hash) {
      if (TermRef cand = s.term.lock()) {
        if (ShallowEquals(*cand, kind, value, name, args)) {
          ++shard.stats.hits;
          return cand;
        }
      } else if (reuse == std::numeric_limits<size_t>::max()) {
        // A hash-equal entry whose term died: remember it so the newcomer
        // can take its slot. (Expiry of hash-unequal slots is deliberately
        // not checked here — that would cost an atomic per probe step on
        // the hottest path; the sweep reclaims those.)
        reuse = idx;
      }
    }
    idx = (idx + 1) & mask;
  }

  auto t = std::make_shared<TermBuilder>();
  t->kind_ = kind;
  t->value_ = std::move(value);
  t->name_ = std::move(name);
  t->args_ = std::move(args);
  t->hash_ = hash;
  uint64_t nodes = 1;
  bool ground = kind != TermKind::kVariable &&
                kind != TermKind::kCollectionVariable;
  bool pattern_free =
      ground && !(kind == TermKind::kApply && !t->name_.empty() &&
                  t->name_.front() == '?');
  for (const TermRef& a : t->args_) {
    nodes += a->node_count_;
    ground = ground && a->ground_;
    pattern_free = pattern_free && a->pattern_free_;
  }
  t->node_count_ = static_cast<uint32_t>(
      std::min<uint64_t>(nodes, Term::kMaxNodeCount));
  t->ground_ = ground ? 1 : 0;
  t->pattern_free_ = pattern_free ? 1 : 0;
  t->interned_ = 1;
  if (reuse != std::numeric_limits<size_t>::max()) {
    // Overwriting a dead slot keeps it `used`, so probe chains that pass
    // through it stay intact; the entry count is unchanged.
    shard.slots[reuse] = Slot{hash, t, true};
  } else {
    shard.slots[idx] = Slot{hash, t, true};
    ++shard.stats.entries;
  }
  ++shard.stats.misses;
  approx_allocated_.fetch_add(1, std::memory_order_relaxed);
  // Chaos hook: "term.interner.sweep" simulates constant reclamation
  // pressure by forcing a compacting sweep on every allocation. The
  // interner has no error path, so injection here is a behavior stress,
  // not a Status — dedup and canonicality must survive it.
  if (gov::FailPoints::AnyArmed() &&
      !gov::FailPoints::Global().Hit("term.interner.sweep").ok()) {
    SweepShardLocked(shard);
  }
  // Compact once used slots outgrow the live population (amortized O(1)
  // per insert), or before the load factor can degrade probe chains.
  if (shard.stats.entries >= shard.next_sweep ||
      (shard.stats.entries + 1) * 4 >= shard.slots.size() * 3) {
    SweepShardLocked(shard);
  }
  return t;
}

size_t Interner::SweepShardLocked(Shard& shard) {
  std::vector<Slot> old = std::move(shard.slots);
  size_t live = 0;
  for (const Slot& s : old) {
    if (s.used && !s.term.expired()) ++live;
  }
  size_t capacity = kMinCapacity;
  while (capacity < live * 2) capacity <<= 1;
  shard.slots.assign(capacity, Slot{});
  const size_t mask = capacity - 1;
  for (Slot& s : old) {
    if (!s.used) continue;
    std::weak_ptr<const Term> w = std::move(s.term);
    if (w.expired()) continue;
    // Reinsert at the real home index even for entries created in
    // degenerate test mode: a degenerate-mode lookup may then miss them
    // and create a duplicate, which is safe (imperfect dedup always is).
    size_t idx = s.hash & mask;
    while (shard.slots[idx].used) idx = (idx + 1) & mask;
    shard.slots[idx] = Slot{s.hash, std::move(w), true};
  }
  size_t erased = shard.stats.entries - live;
  shard.stats.entries = live;
  ++shard.stats.sweeps;
  // Re-arm so sweeping stays amortized O(1) per insert.
  shard.next_sweep = std::max<size_t>(1024, shard.stats.entries * 2);
  return erased;
}

size_t Interner::Sweep() {
  size_t erased = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    erased += SweepShardLocked(shard);
  }
  return erased;
}

Interner::Stats Interner::GetStats() {
  Stats total;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.entries += shard.stats.entries;
    total.sweeps += shard.stats.sweeps;
  }
  return total;
}

TermRef Interner::CloneWithHashForTesting(const TermRef& t,
                                          uint64_t forced_hash) {
  auto clone = std::make_shared<TermBuilder>();
  clone->kind_ = t->kind_;
  clone->value_ = t->value_;
  clone->name_ = t->name_;
  clone->args_ = t->args_;
  clone->hash_ = forced_hash;
  clone->node_count_ = t->node_count_;
  clone->ground_ = t->ground_;
  clone->pattern_free_ = t->pattern_free_;
  clone->interned_ = false;
  return clone;
}

}  // namespace eds::term
