#include "term/parser.h"

#include <cctype>

#include "common/strings.h"

namespace eds::term {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Status LexError(size_t pos, const std::string& message) {
  return Status::ParseError("at offset " + std::to_string(pos) + ": " +
                            message);
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&out](TokKind kind, size_t pos) -> Token& {
    Token t;
    t.kind = kind;
    t.pos = pos;
    out.push_back(std::move(t));
    return out.back();
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      // `x*` with no space: collection variable.
      if (j < n && text[j] == '*') {
        Token& t = push(TokKind::kCollVar, start);
        t.text = std::string(text.substr(i, j - i));
        i = j + 1;
      } else {
        Token& t = push(TokKind::kIdent, start);
        t.text = std::string(text.substr(i, j - i));
        i = j;
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      bool is_real = false;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      std::string lexeme(text.substr(i, j - i));
      if (is_real) {
        Token& t = push(TokKind::kReal, start);
        t.real_value = std::stod(lexeme);
      } else {
        Token& t = push(TokKind::kInt, start);
        t.int_value = std::stoll(lexeme);
      }
      i = j;
      continue;
    }
    switch (c) {
      case '\'': {
        // Single-quoted string; '' escapes a quote.
        std::string s;
        size_t j = i + 1;
        bool closed = false;
        while (j < n) {
          if (text[j] == '\'') {
            if (j + 1 < n && text[j + 1] == '\'') {
              s += '\'';
              j += 2;
            } else {
              closed = true;
              ++j;
              break;
            }
          } else {
            s += text[j];
            ++j;
          }
        }
        if (!closed) return LexError(start, "unterminated string literal");
        Token& t = push(TokKind::kString, start);
        t.text = std::move(s);
        i = j;
        break;
      }
      case '$': {
        // $NAME: a reserved-prefix variable (the plan-cache parameter
        // variables $CQ0, $CQ1, ... print this way); lexed as an identifier
        // token whose text keeps the '$' so the parser can tell it apart
        // from user variables. Needed so printed templates re-parse.
        if (i + 1 < n && IsIdentStart(text[i + 1])) {
          size_t j = i + 1;
          while (j < n && IsIdentChar(text[j])) ++j;
          Token& t = push(TokKind::kIdent, start);
          t.text = std::string(text.substr(i, j - i));
          i = j;
          break;
        }
        // $i.j attribute reference.
        size_t j = i + 1;
        size_t a_start = j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        if (j == a_start || j >= n || text[j] != '.') {
          return LexError(start, "malformed attribute reference, want $i.j");
        }
        size_t b_start = ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        if (j == b_start) {
          return LexError(start, "malformed attribute reference, want $i.j");
        }
        Token& t = push(TokKind::kAttrRef, start);
        t.int_a = std::stoll(std::string(text.substr(a_start, b_start - 1 - a_start)));
        t.int_b = std::stoll(std::string(text.substr(b_start, j - b_start)));
        i = j;
        break;
      }
      case '(': push(TokKind::kLParen, start); ++i; break;
      case ')': push(TokKind::kRParen, start); ++i; break;
      case '{': push(TokKind::kLBrace, start); ++i; break;
      case '}': push(TokKind::kRBrace, start); ++i; break;
      case ',': push(TokKind::kComma, start); ++i; break;
      case ';': push(TokKind::kSemicolon, start); ++i; break;
      case ':': push(TokKind::kColon, start); ++i; break;
      case '?': push(TokKind::kQuestion, start); ++i; break;
      case '/': push(TokKind::kSlash, start); ++i; break;
      case '=': push(TokKind::kEq, start); ++i; break;
      case '+': push(TokKind::kPlus, start); ++i; break;
      case '*': push(TokKind::kStar, start); ++i; break;
      case '<':
        if (i + 1 < n && text[i + 1] == '>') {
          push(TokKind::kNe, start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::kLe, start);
          i += 2;
        } else {
          push(TokKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::kGe, start);
          i += 2;
        } else {
          push(TokKind::kGt, start);
          ++i;
        }
        break;
      case '-':
        if (i + 2 < n && text[i + 1] == '-' && text[i + 2] == '>') {
          push(TokKind::kArrow, start);
          i += 3;
        } else {
          push(TokKind::kMinus, start);
          ++i;
        }
        break;
      default:
        return LexError(start, std::string("unexpected character '") + c + "'");
    }
  }
  push(TokKind::kEnd, n);
  return out;
}

const Token& TermParser::Peek() const {
  static const Token kEndToken;
  if (pos_ >= tokens_->size()) return kEndToken;
  return (*tokens_)[pos_];
}

bool TermParser::AtEnd() const { return Peek().kind == TokKind::kEnd; }

Status TermParser::Expect(TokKind kind, const char* what) {
  if (Peek().kind != kind) {
    return Status::ParseError("at offset " + std::to_string(Peek().pos) +
                              ": expected " + what);
  }
  Advance();
  return Status::OK();
}

Result<TermRef> TermParser::ParseExpression() {
  // Every nesting level (parenthesized group, application argument) re-enters
  // here, and each level costs ~8 stack frames through the precedence chain.
  // 256 is far deeper than any legitimate plan term and well within the
  // default stack even under sanitizer-inflated frames.
  constexpr int kMaxDepth = 256;
  if (depth_ >= kMaxDepth) {
    return Status::ParseError("at offset " + std::to_string(Peek().pos) +
                              ": expression nesting exceeds " +
                              std::to_string(kMaxDepth) + " levels");
  }
  ++depth_;
  Result<TermRef> out = ParseOr();
  --depth_;
  return out;
}

Result<TermRef> TermParser::ParseOr() {
  EDS_ASSIGN_OR_RETURN(TermRef left, ParseAnd());
  while (Peek().kind == TokKind::kIdent &&
         EqualsIgnoreCase(Peek().text, "OR")) {
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef right, ParseAnd());
    left = Term::Or(std::move(left), std::move(right));
  }
  return left;
}

Result<TermRef> TermParser::ParseAnd() {
  EDS_ASSIGN_OR_RETURN(TermRef left, ParseNot());
  while (Peek().kind == TokKind::kIdent &&
         EqualsIgnoreCase(Peek().text, "AND")) {
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef right, ParseNot());
    left = Term::And(std::move(left), std::move(right));
  }
  return left;
}

Result<TermRef> TermParser::ParseNot() {
  if (Peek().kind == TokKind::kIdent && EqualsIgnoreCase(Peek().text, "NOT") &&
      // NOT(x) is also valid as a plain application; the prefix form is
      // NOT <expr> without an immediately-following '('... both parse to the
      // same term, so just treat NOT specially only in prefix position.
      true) {
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef inner, ParseNot());
    return Term::Not(std::move(inner));
  }
  return ParseComparison();
}

Result<TermRef> TermParser::ParseComparison() {
  EDS_ASSIGN_OR_RETURN(TermRef left, ParseAdditive());
  const char* op = nullptr;
  switch (Peek().kind) {
    case TokKind::kEq: op = kEq; break;
    case TokKind::kNe: op = kNe; break;
    case TokKind::kLt: op = kLt; break;
    case TokKind::kLe: op = kLe; break;
    case TokKind::kGt: op = kGt; break;
    case TokKind::kGe: op = kGe; break;
    default: return left;
  }
  Advance();
  EDS_ASSIGN_OR_RETURN(TermRef right, ParseAdditive());
  return Term::Apply(op, {std::move(left), std::move(right)});
}

Result<TermRef> TermParser::ParseAdditive() {
  EDS_ASSIGN_OR_RETURN(TermRef left, ParseMultiplicative());
  while (Peek().kind == TokKind::kPlus || Peek().kind == TokKind::kMinus) {
    const char* op = Peek().kind == TokKind::kPlus ? "ADD" : "SUB";
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef right, ParseMultiplicative());
    left = Term::Apply(op, {std::move(left), std::move(right)});
  }
  return left;
}

Result<TermRef> TermParser::ParseMultiplicative() {
  EDS_ASSIGN_OR_RETURN(TermRef left, ParseUnary());
  while (Peek().kind == TokKind::kStar ||
         (allow_division_ && Peek().kind == TokKind::kSlash)) {
    const char* op = Peek().kind == TokKind::kStar ? "MUL" : "DIV";
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef right, ParseUnary());
    left = Term::Apply(op, {std::move(left), std::move(right)});
  }
  return left;
}

Result<TermRef> TermParser::ParseUnary() {
  if (Peek().kind == TokKind::kMinus) {
    Advance();
    EDS_ASSIGN_OR_RETURN(TermRef inner, ParseUnary());
    if (inner->is_constant() &&
        inner->constant().kind() == value::ValueKind::kInt) {
      return Term::Int(-inner->constant().AsInt());
    }
    if (inner->is_constant() &&
        inner->constant().kind() == value::ValueKind::kReal) {
      return Term::Real(-inner->constant().AsReal());
    }
    return Term::Apply("NEG", {std::move(inner)});
  }
  return ParsePrimary();
}

Result<TermRef> TermParser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokKind::kInt: {
      int64_t v = t.int_value;
      Advance();
      return Term::Int(v);
    }
    case TokKind::kReal: {
      double v = t.real_value;
      Advance();
      return Term::Real(v);
    }
    case TokKind::kString: {
      std::string s = t.text;
      Advance();
      return Term::Str(std::move(s));
    }
    case TokKind::kAttrRef: {
      int64_t a = t.int_a, b = t.int_b;
      Advance();
      return Term::Attr(a, b);
    }
    case TokKind::kCollVar: {
      std::string name = t.text;
      Advance();
      return Term::CollVar(std::move(name));
    }
    case TokKind::kLParen: {
      Advance();
      EDS_ASSIGN_OR_RETURN(TermRef inner, ParseExpression());
      EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    case TokKind::kQuestion: {
      // ?F(args): a functor variable — matches any application of the same
      // arity and binds F to the functor name (the paper's second-order
      // metavariables F, G, H of Fig. 6).
      Advance();
      if (Peek().kind != TokKind::kIdent) {
        return Status::ParseError("at offset " + std::to_string(Peek().pos) +
                                  ": expected a functor-variable name "
                                  "after '?'");
      }
      // Functor-variable names are canonicalized to upper case, matching
      // Term::Apply's treatment of functors.
      std::string name = "?" + ToUpperAscii(Peek().text);
      Advance();
      if (Peek().kind != TokKind::kLParen) {
        // Bare ?F: a reference to the functor variable itself (bound to the
        // functor name as a string), usable in constraints.
        return Term::Var(std::move(name));
      }
      Advance();  // '('
      TermList args;
      if (Peek().kind != TokKind::kRParen) {
        while (true) {
          EDS_ASSIGN_OR_RETURN(TermRef arg, ParseExpression());
          args.push_back(std::move(arg));
          if (Peek().kind == TokKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return Term::Apply(std::move(name), std::move(args));
    }
    case TokKind::kIdent: {
      std::string name = t.text;
      if (!name.empty() && name[0] == '$') {
        // $-prefixed reserved variable ($CQi plan-cache parameters): always
        // a plain variable, never a boolean constant or an application.
        Advance();
        return Term::Var(std::move(name));
      }
      if (EqualsIgnoreCase(name, "TRUE")) {
        Advance();
        return Term::True();
      }
      if (EqualsIgnoreCase(name, "FALSE")) {
        Advance();
        return Term::False();
      }
      Advance();
      if (Peek().kind == TokKind::kLParen) {
        Advance();
        TermList args;
        if (Peek().kind != TokKind::kRParen) {
          while (true) {
            EDS_ASSIGN_OR_RETURN(TermRef arg, ParseExpression());
            args.push_back(std::move(arg));
            if (Peek().kind == TokKind::kComma) {
              Advance();
              continue;
            }
            break;
          }
        }
        EDS_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return Term::Apply(std::move(name), std::move(args));
      }
      return Term::Var(std::move(name));
    }
    default:
      return Status::ParseError("at offset " + std::to_string(t.pos) +
                                ": expected a term");
  }
}

Result<TermRef> ParseTerm(std::string_view text) {
  EDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TermParser parser(&tokens, 0);
  EDS_ASSIGN_OR_RETURN(TermRef t, parser.ParseExpression());
  if (!parser.AtEnd()) {
    return Status::ParseError("at offset " +
                              std::to_string(parser.Peek().pos) +
                              ": trailing input after term");
  }
  return t;
}

}  // namespace eds::term
