#ifndef EDS_TERM_PARSER_H_
#define EDS_TERM_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::term {

// Parses the textual term syntax used throughout the tests, examples and the
// rule DSL. The grammar follows the paper's functional notation plus infix
// operators with the usual precedence (OR < AND < NOT < comparison <
// additive < multiplicative):
//
//   SEARCH(LIST(RELATION('FILM')), ($1.1 = 10), LIST($1.2))
//   F(SET(x*, G(y, f)))
//   (x > y AND NOT MEMBER('Cartoon', c))
//
// Lexical notes:
//   * `x*` (identifier immediately followed by '*') is a collection
//     variable; multiplication needs spacing: `x * y`.
//   * `$i.j` is an attribute reference ATTR(i, j). The paper writes `1.1`;
//     we prefix with '$' to avoid ambiguity with REAL literals.
//   * A bare identifier is a variable; `ident(...)` is a function
//     application. TRUE/FALSE are boolean constants.
//   * Strings are single-quoted; '' escapes a quote.
Result<TermRef> ParseTerm(std::string_view text);

// Token model shared with the rule-DSL parser.
enum class TokKind {
  kEnd,
  kIdent,
  kCollVar,   // x*
  kInt,
  kReal,
  kString,
  kAttrRef,   // $i.j  (payload in int_a, int_b)
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSlash,     // /
  kArrow,     // -->
  kEq,        // =
  kNe,        // <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSemicolon,
  kColon,
  kQuestion,  // ? — prefixes a functor variable: ?F(x)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // identifier / string payload
  int64_t int_value = 0;
  double real_value = 0;
  int64_t int_a = 0;  // attr ref: relation index
  int64_t int_b = 0;  // attr ref: attribute index
  size_t pos = 0;     // byte offset, for diagnostics
};

// Tokenizes `text` into the shared token stream. ParseError on bad lexemes.
Result<std::vector<Token>> Tokenize(std::string_view text);

// Recursive-descent parser over a token window; exposed so the rule-DSL
// compiler can parse embedded terms and then continue with its own syntax.
class TermParser {
 public:
  // `allow_division` is disabled by the rule-DSL compiler, where '/'
  // separates rule sections (write DIV(a, b) inside rules instead).
  TermParser(const std::vector<Token>* tokens, size_t start,
             bool allow_division = true)
      : tokens_(tokens), pos_(start), allow_division_(allow_division) {}

  // Parses one expression starting at the current position; on success the
  // position is left after the expression.
  Result<TermRef> ParseExpression();

  size_t position() const { return pos_; }
  const Token& Peek() const;
  void Advance() { ++pos_; }
  bool AtEnd() const;

 private:
  Result<TermRef> ParseOr();
  Result<TermRef> ParseAnd();
  Result<TermRef> ParseNot();
  Result<TermRef> ParseComparison();
  Result<TermRef> ParseAdditive();
  Result<TermRef> ParseMultiplicative();
  Result<TermRef> ParseUnary();
  Result<TermRef> ParsePrimary();

  Status Expect(TokKind kind, const char* what);

  const std::vector<Token>* tokens_;
  size_t pos_;
  bool allow_division_ = true;
  // Recursion depth of nested expressions, bounded so adversarial input
  // (e.g. thousands of unclosed '(') yields a ParseError instead of
  // exhausting the call stack.
  int depth_ = 0;
};

}  // namespace eds::term

#endif  // EDS_TERM_PARSER_H_
