#ifndef EDS_TERM_TERM_H_
#define EDS_TERM_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "value/value.h"

namespace eds::term {

class Term;
using TermRef = std::shared_ptr<const Term>;
using TermList = std::vector<TermRef>;

// The paper's central idea is a *uniform* term formalism: LERA operators,
// qualifications, ADT function calls and constants are all terms, so one
// rewriting machinery covers syntactic and semantic optimization alike.
//
//   kConstant            literal value ('Quinn', 10000, TRUE)
//   kVariable            rule variable (x, f, qual) — binds to one term
//   kCollectionVariable  rule collection variable (x*) — binds to a
//                        subsequence of a LIST/SET argument list
//   kApply               F(t1, ..., tn); LIST, SET, TUPLE, AND, EQ, SEARCH,
//                        FIX, ... are ordinary functors
enum class TermKind {
  kConstant,
  kVariable,
  kCollectionVariable,
  kApply,
};

// Well-known functor names. Functor names are canonicalized to upper case at
// construction, so recognizers compare against these directly.
inline constexpr const char* kList = "LIST";
inline constexpr const char* kSet = "SET";
inline constexpr const char* kTuple = "TUPLE";
inline constexpr const char* kAnd = "AND";
inline constexpr const char* kOr = "OR";
inline constexpr const char* kNot = "NOT";
inline constexpr const char* kEq = "EQ";
inline constexpr const char* kNe = "NE";
inline constexpr const char* kLt = "LT";
inline constexpr const char* kLe = "LE";
inline constexpr const char* kGt = "GT";
inline constexpr const char* kGe = "GE";
inline constexpr const char* kAttr = "ATTR";      // ATTR(i, j) prints as i.j
inline constexpr const char* kRelation = "RELATION";  // RELATION('FILM')

// An immutable node of a term tree. Construct through the factories; nodes
// are shared via TermRef and never mutated, so rewritten terms share
// untouched subtrees with their originals.
//
// The factories canonicalize through the hash-cons table in
// term/interner.h: structurally equal terms built while an equal term is
// alive come back as the *same* node. Every node also carries its
// structural hash, node count, and variable-freeness, computed once from
// its children at construction, so Hash/CountNodes/IsGround/Equals are
// O(1) field reads instead of tree walks.
class Term {
 public:
  TermKind kind() const { return kind_; }

  bool is_constant() const { return kind_ == TermKind::kConstant; }
  bool is_variable() const { return kind_ == TermKind::kVariable; }
  bool is_collection_variable() const {
    return kind_ == TermKind::kCollectionVariable;
  }
  bool is_apply() const { return kind_ == TermKind::kApply; }

  // kConstant payload.
  const value::Value& constant() const { return value_; }

  // kVariable / kCollectionVariable: the variable name (without the '*').
  const std::string& var_name() const { return name_; }

  // kApply: upper-cased functor and arguments.
  const std::string& functor() const { return name_; }
  const TermList& args() const { return args_; }
  size_t arity() const { return args_.size(); }
  const TermRef& arg(size_t i) const { return args_[i]; }

  // True if the functor equals `name` (which must be upper case).
  bool IsApply(const std::string& name) const {
    return kind_ == TermKind::kApply && name_ == name;
  }
  bool IsApply(const std::string& name, size_t n) const {
    return IsApply(name) && args_.size() == n;
  }

  // ---- cached structural facts (filled at construction) ----
  // Structural hash consistent with Equals: equal terms hash equal.
  uint64_t structural_hash() const { return hash_; }
  // Number of nodes in this tree.
  size_t node_count() const { return node_count_; }
  // No variables or collection variables below this node.
  bool ground() const { return ground_ != 0; }
  // Ground *and* no '?'-prefixed functor variables either, i.e. applying
  // any substitution to this term is the identity. IsGround alone is not
  // enough: functor variables live in the functor name, not in a
  // kVariable node.
  bool pattern_free() const { return pattern_free_ != 0; }
  // Built by the hash-cons table. False only for testing clones; interned
  // structurally equal terms built while this node is alive are this node.
  bool interned() const { return interned_ != 0; }

  // Pretty form: infix for boolean/comparison/arithmetic functors, `i.j`
  // for ATTR, `'lit'` for strings, `F(a, b)` otherwise.
  std::string ToString() const;

  // ---- factories ----
  static TermRef Constant(value::Value v);
  static TermRef Int(int64_t i);
  static TermRef Real(double d);
  static TermRef Str(std::string s);
  static TermRef Bool(bool b);
  static TermRef True() { return Bool(true); }
  static TermRef False() { return Bool(false); }

  static TermRef Var(std::string name);
  static TermRef CollVar(std::string name);

  static TermRef Apply(std::string functor, TermList args);
  static TermRef List(TermList args) { return Apply(kList, std::move(args)); }
  static TermRef MakeSet(TermList args) {
    return Apply(kSet, std::move(args));
  }
  static TermRef MakeTuple(TermList args) {
    return Apply(kTuple, std::move(args));
  }

  // Binary/unary convenience constructors.
  static TermRef And(TermRef a, TermRef b);
  static TermRef Or(TermRef a, TermRef b);
  static TermRef Not(TermRef a);
  static TermRef Eq(TermRef a, TermRef b);
  static TermRef Attr(int64_t rel, int64_t attr);
  static TermRef Relation(std::string name);

 protected:
  // Construction goes through the factories (which build a derived
  // TermBuilder internally); protected so the builder can default-construct.
  Term() = default;

 private:
  friend class Interner;

  static constexpr uint32_t kMaxNodeCount = (1u << 29) - 1;

  TermKind kind_ = TermKind::kConstant;
  // The cached subtree facts share kind_'s alignment hole: node counts are
  // clamped to 29 bits (half a billion nodes dwarfs any real plan) so the
  // three flags ride along without growing the node — executors walk terms
  // by the million, and every extra cache line is paid per row.
  uint32_t node_count_ : 29 = 1;
  uint32_t ground_ : 1 = 1;
  uint32_t pattern_free_ : 1 = 1;
  uint32_t interned_ : 1 = 0;
  value::Value value_;
  std::string name_;
  TermList args_;
  uint64_t hash_ = 0;
};

// Structural equality. Canonical construction makes this O(1) in practice:
// pointer-identical terms are equal, terms with different cached hashes are
// unequal, and only hash-equal distinct nodes (value-equivalent constants
// like 2 vs 2.0 interned separately by exact payload, or genuine 64-bit
// collisions) fall back to the deep walk.
bool Equals(const TermRef& a, const TermRef& b);

// Total structural order (kind, then payload, then args lexicographically).
int Compare(const TermRef& a, const TermRef& b);

// Structural hash, consistent with Equals. O(1): reads the cached hash.
uint64_t Hash(const TermRef& t);

// True if `t` contains no variables or collection variables. O(1).
bool IsGround(const TermRef& t);

// Collects the names of variables (`vars`) and collection variables
// (`coll_vars`) occurring in `t`, in first-occurrence order, deduplicated.
// Either output may be null.
void CollectVariables(const TermRef& t, std::vector<std::string>* vars,
                      std::vector<std::string>* coll_vars);

// Number of nodes in the tree (the paper's termination argument counts
// terms; the engine uses this for size-decreasing diagnostics). O(1).
size_t CountNodes(const TermRef& t);

// Deep (tree-walking) counterparts of the cached O(1) reads above. These
// recompute from scratch and exist as the ground truth the caches are
// verified against in tests, and as the fallback Equals uses on hash-equal
// distinct nodes.
bool DeepEquals(const TermRef& a, const TermRef& b);
uint64_t DeepHash(const TermRef& t);
bool DeepIsGround(const TermRef& t);
size_t DeepCountNodes(const TermRef& t);

namespace internal {
// Shared by the interner and DeepHash so cached and recomputed hashes
// agree. HashConstantValue is consistent with value::Compare equivalence
// (Int(2) and Real(2.0) hash equal; tuple field names are ignored).
uint64_t HashConstantValue(const value::Value& v);
uint64_t HashNode(TermKind kind, const std::string& name,
                  const value::Value& v, const uint64_t* child_hashes,
                  size_t n);
}  // namespace internal

namespace testing {
// Returns an *uninterned* shallow clone of `t` whose cached hash is forced
// to `forced_hash` (children are shared). This deliberately violates the
// hash/Equals consistency invariant; it exists solely so tests can
// manufacture hash collisions and prove collision-immunity of consumers.
TermRef CloneWithHashForTesting(const TermRef& t, uint64_t forced_hash);
}  // namespace testing

// Rebuilds an apply node with new arguments, reusing the original node when
// nothing changed. Precondition: t->is_apply().
TermRef WithArgs(const TermRef& t, TermList args);

// Flattens nested AND into a conjunct list (a non-AND term yields itself).
TermList Conjuncts(const TermRef& t);
// AND-combines conjuncts; empty list yields TRUE.
TermRef MakeConjunction(const TermList& conjuncts);

std::ostream& operator<<(std::ostream& os, const TermRef& t);

}  // namespace eds::term

#endif  // EDS_TERM_TERM_H_
