#ifndef EDS_TERM_TERM_H_
#define EDS_TERM_TERM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "value/value.h"

namespace eds::term {

class Term;
using TermRef = std::shared_ptr<const Term>;
using TermList = std::vector<TermRef>;

// The paper's central idea is a *uniform* term formalism: LERA operators,
// qualifications, ADT function calls and constants are all terms, so one
// rewriting machinery covers syntactic and semantic optimization alike.
//
//   kConstant            literal value ('Quinn', 10000, TRUE)
//   kVariable            rule variable (x, f, qual) — binds to one term
//   kCollectionVariable  rule collection variable (x*) — binds to a
//                        subsequence of a LIST/SET argument list
//   kApply               F(t1, ..., tn); LIST, SET, TUPLE, AND, EQ, SEARCH,
//                        FIX, ... are ordinary functors
enum class TermKind {
  kConstant,
  kVariable,
  kCollectionVariable,
  kApply,
};

// Well-known functor names. Functor names are canonicalized to upper case at
// construction, so recognizers compare against these directly.
inline constexpr const char* kList = "LIST";
inline constexpr const char* kSet = "SET";
inline constexpr const char* kTuple = "TUPLE";
inline constexpr const char* kAnd = "AND";
inline constexpr const char* kOr = "OR";
inline constexpr const char* kNot = "NOT";
inline constexpr const char* kEq = "EQ";
inline constexpr const char* kNe = "NE";
inline constexpr const char* kLt = "LT";
inline constexpr const char* kLe = "LE";
inline constexpr const char* kGt = "GT";
inline constexpr const char* kGe = "GE";
inline constexpr const char* kAttr = "ATTR";      // ATTR(i, j) prints as i.j
inline constexpr const char* kRelation = "RELATION";  // RELATION('FILM')

// An immutable node of a term tree. Construct through the factories; nodes
// are shared via TermRef and never mutated, so rewritten terms share
// untouched subtrees with their originals.
class Term {
 public:
  TermKind kind() const { return kind_; }

  bool is_constant() const { return kind_ == TermKind::kConstant; }
  bool is_variable() const { return kind_ == TermKind::kVariable; }
  bool is_collection_variable() const {
    return kind_ == TermKind::kCollectionVariable;
  }
  bool is_apply() const { return kind_ == TermKind::kApply; }

  // kConstant payload.
  const value::Value& constant() const { return value_; }

  // kVariable / kCollectionVariable: the variable name (without the '*').
  const std::string& var_name() const { return name_; }

  // kApply: upper-cased functor and arguments.
  const std::string& functor() const { return name_; }
  const TermList& args() const { return args_; }
  size_t arity() const { return args_.size(); }
  const TermRef& arg(size_t i) const { return args_[i]; }

  // True if the functor equals `name` (which must be upper case).
  bool IsApply(const std::string& name) const {
    return kind_ == TermKind::kApply && name_ == name;
  }
  bool IsApply(const std::string& name, size_t n) const {
    return IsApply(name) && args_.size() == n;
  }

  // Pretty form: infix for boolean/comparison/arithmetic functors, `i.j`
  // for ATTR, `'lit'` for strings, `F(a, b)` otherwise.
  std::string ToString() const;

  // ---- factories ----
  static TermRef Constant(value::Value v);
  static TermRef Int(int64_t i);
  static TermRef Real(double d);
  static TermRef Str(std::string s);
  static TermRef Bool(bool b);
  static TermRef True() { return Bool(true); }
  static TermRef False() { return Bool(false); }

  static TermRef Var(std::string name);
  static TermRef CollVar(std::string name);

  static TermRef Apply(std::string functor, TermList args);
  static TermRef List(TermList args) { return Apply(kList, std::move(args)); }
  static TermRef MakeSet(TermList args) {
    return Apply(kSet, std::move(args));
  }
  static TermRef MakeTuple(TermList args) {
    return Apply(kTuple, std::move(args));
  }

  // Binary/unary convenience constructors.
  static TermRef And(TermRef a, TermRef b);
  static TermRef Or(TermRef a, TermRef b);
  static TermRef Not(TermRef a);
  static TermRef Eq(TermRef a, TermRef b);
  static TermRef Attr(int64_t rel, int64_t attr);
  static TermRef Relation(std::string name);

 protected:
  // Construction goes through the factories (which build a derived
  // TermBuilder internally); protected so the builder can default-construct.
  Term() = default;

 private:
  TermKind kind_ = TermKind::kConstant;
  value::Value value_;
  std::string name_;
  TermList args_;
};

// Deep structural equality.
bool Equals(const TermRef& a, const TermRef& b);

// Total structural order (kind, then payload, then args lexicographically).
int Compare(const TermRef& a, const TermRef& b);

// FNV-style structural hash, consistent with Equals.
uint64_t Hash(const TermRef& t);

// True if `t` contains no variables or collection variables.
bool IsGround(const TermRef& t);

// Collects the names of variables (`vars`) and collection variables
// (`coll_vars`) occurring in `t`, in first-occurrence order, deduplicated.
// Either output may be null.
void CollectVariables(const TermRef& t, std::vector<std::string>* vars,
                      std::vector<std::string>* coll_vars);

// Number of nodes in the tree (the paper's termination argument counts
// terms; the engine uses this for size-decreasing diagnostics).
size_t CountNodes(const TermRef& t);

// Rebuilds an apply node with new arguments, reusing the original node when
// nothing changed. Precondition: t->is_apply().
TermRef WithArgs(const TermRef& t, TermList args);

// Flattens nested AND into a conjunct list (a non-AND term yields itself).
TermList Conjuncts(const TermRef& t);
// AND-combines conjuncts; empty list yields TRUE.
TermRef MakeConjunction(const TermList& conjuncts);

std::ostream& operator<<(std::ostream& os, const TermRef& t);

}  // namespace eds::term

#endif  // EDS_TERM_TERM_H_
