#include "verify/instance.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "gov/failpoint.h"
#include "lera/lera.h"
#include "lera/schema.h"
#include "term/parser.h"
#include "term/substitution.h"
#include "types/type.h"
#include "value/value.h"

namespace eds::verify {

using term::TermRef;
using value::Value;

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// VerifyEnv
// ---------------------------------------------------------------------------

Result<std::unique_ptr<VerifyEnv>> VerifyEnv::Create(uint64_t seed,
                                                     size_t random_databases) {
  auto env = std::unique_ptr<VerifyEnv>(new VerifyEnv());
  EDS_ASSIGN_OR_RETURN(types::TypeRef num,
                       env->catalog_.types().Find("NUMERIC"));
  EDS_ASSIGN_OR_RETURN(types::TypeRef chr, env->catalog_.types().Find("CHAR"));

  auto add_table = [&](const std::string& name,
                       std::vector<types::Field> cols) -> Status {
    size_t arity = cols.size();
    EDS_RETURN_IF_ERROR(env->catalog_.CreateTable({name, std::move(cols)}));
    env->table_arity_.emplace_back(name, arity);
    return Status::OK();
  };
  EDS_RETURN_IF_ERROR(add_table("V0", {{"A", num}, {"B", num}}));
  EDS_RETURN_IF_ERROR(add_table("V1", {{"A", num}, {"B", num}}));
  EDS_RETURN_IF_ERROR(add_table("V2", {{"A", num}, {"B", num}}));
  EDS_RETURN_IF_ERROR(add_table("VE", {{"A", num}, {"B", num}}));
  EDS_RETURN_IF_ERROR(add_table("VS", {{"S", chr}, {"N", num}}));
  EDS_RETURN_IF_ERROR(add_table("VEDGE", {{"SRC", num}, {"DST", num}}));
  EDS_RETURN_IF_ERROR(add_table("CLO", {{"SRC", num}, {"DST", num}}));

  using TableRows = std::vector<std::pair<std::string, exec::Rows>>;
  auto make_instance = [&](const std::string& name,
                           const TableRows& rows) -> Status {
    Instance inst;
    inst.name = name;
    inst.db = std::make_unique<exec::Database>();
    for (const auto& [tname, arity] : env->table_arity_) {
      EDS_RETURN_IF_ERROR(inst.db->CreateTable(tname, arity));
    }
    for (const auto& [tname, trows] : rows) {
      EDS_ASSIGN_OR_RETURN(exec::Table * t, inst.db->GetTable(tname));
      for (const exec::Row& r : trows) {
        EDS_RETURN_IF_ERROR(t->Insert(r));
      }
    }
    env->instances_.push_back(std::move(inst));
    return Status::OK();
  };
  auto I = [](int64_t v) { return Value::Int(v); };
  auto S = [](const char* v) { return Value::String(v); };
  auto N = []() { return Value::Null(); };

  // VE and CLO stay empty in every instance by construction.
  EDS_RETURN_IF_ERROR(make_instance(
      "base", {{"V0", {{I(1), I(2)}, {I(2), I(3)}, {I(3), I(1)}}},
               {"V1", {{I(1), I(1)}, {I(2), I(2)}}},
               {"V2", {{I(0), I(1)}, {I(2), I(5)}}},
               {"VS", {{S("a"), I(1)}, {S("b"), I(2)}}},
               {"VEDGE", {{I(1), I(2)}, {I(2), I(3)}, {I(3), I(4)}}}}));
  EDS_RETURN_IF_ERROR(make_instance(
      "dups",
      {{"V0", {{I(1), I(2)}, {I(1), I(2)}, {I(2), I(3)}, {I(3), I(1)}}},
       {"V1", {{I(1), I(1)}, {I(1), I(1)}, {I(2), I(2)}}},
       {"V2", {{I(0), I(1)}, {I(0), I(1)}, {I(2), I(5)}}},
       {"VS", {{S("a"), I(1)}, {S("a"), I(1)}, {S("b"), I(2)}}},
       {"VEDGE", {{I(1), I(2)}, {I(1), I(2)}, {I(2), I(3)}}}}));
  EDS_RETURN_IF_ERROR(make_instance(
      "nulls", {{"V0", {{I(1), N()}, {N(), I(2)}, {I(3), I(1)}}},
                {"V1", {{I(1), N()}, {I(2), I(2)}}},
                {"V2", {{N(), N()}, {I(2), I(5)}}},
                {"VS", {{N(), I(1)}, {S("b"), N()}}},
                {"VEDGE", {{I(1), I(2)}, {I(2), N()}}}}));
  EDS_RETURN_IF_ERROR(make_instance("empty", {}));

  for (size_t r = 0; r < random_databases; ++r) {
    uint64_t state = seed ^ (0xabcdef12345ULL + 77 * r);
    TableRows rows;
    for (const auto& [tname, arity] : env->table_arity_) {
      if (tname == "VE" || tname == "CLO") continue;
      size_t nrows = SplitMix64(&state) % 5;
      exec::Rows trows;
      for (size_t i = 0; i < nrows; ++i) {
        exec::Row row;
        for (size_t c = 0; c < arity; ++c) {
          bool is_null = SplitMix64(&state) % 8 == 0;
          if (is_null) {
            row.push_back(N());
          } else if (tname == "VS" && c == 0) {
            static const char* kStrs[] = {"a", "b", "c", ""};
            row.push_back(S(kStrs[SplitMix64(&state) % 4]));
          } else {
            row.push_back(I(static_cast<int64_t>(SplitMix64(&state) % 5) - 1));
          }
        }
        trows.push_back(std::move(row));
      }
      rows.emplace_back(tname, std::move(trows));
    }
    EDS_RETURN_IF_ERROR(make_instance("rand" + std::to_string(r), rows));
  }
  return env;
}

VerifyEnv::Snapshot VerifyEnv::SnapshotOf(size_t instance_index) const {
  Snapshot snap;
  if (instance_index >= instances_.size()) return snap;
  const Instance& inst = instances_[instance_index];
  for (const auto& [tname, arity] : table_arity_) {
    (void)arity;
    auto t = inst.db->GetTable(tname);
    snap.tables.emplace_back(tname, t.ok() ? (*t)->rows() : exec::Rows{});
  }
  return snap;
}

Result<std::unique_ptr<exec::Database>> VerifyEnv::Materialize(
    const Snapshot& snap) const {
  auto db = std::make_unique<exec::Database>();
  for (const auto& [tname, arity] : table_arity_) {
    EDS_RETURN_IF_ERROR(db->CreateTable(tname, arity));
  }
  for (const auto& [tname, trows] : snap.tables) {
    EDS_ASSIGN_OR_RETURN(exec::Table * t, db->GetTable(tname));
    for (const exec::Row& r : trows) {
      EDS_RETURN_IF_ERROR(t->Insert(r));
    }
  }
  return db;
}

std::string VerifyEnv::Describe(const Snapshot& snap,
                                size_t max_rows_per_table) {
  std::ostringstream out;
  bool first_table = true;
  for (const auto& [tname, trows] : snap.tables) {
    if (trows.empty()) continue;
    if (!first_table) out << "\n";
    first_table = false;
    out << tname << ":";
    size_t shown = std::min(trows.size(), max_rows_per_table);
    for (size_t i = 0; i < shown; ++i) {
      out << (i == 0 ? " " : ", ") << "(";
      for (size_t j = 0; j < trows[i].size(); ++j) {
        if (j > 0) out << ", ";
        out << trows[i][j].ToString();
      }
      out << ")";
    }
    if (trows.size() > shown) {
      out << " +" << (trows.size() - shown) << " more";
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Strict plan type checking
// ---------------------------------------------------------------------------

namespace {

// The coarse value-kind lattice the executor's function library enforces.
enum class EKind { kBool, kNum, kStr, kOther, kAny };

EKind KindOfType(const types::TypeRef& t) {
  switch (t->kind()) {
    case types::TypeKind::kBool: return EKind::kBool;
    case types::TypeKind::kInt:
    case types::TypeKind::kReal:
    case types::TypeKind::kNumeric: return EKind::kNum;
    case types::TypeKind::kChar:
    case types::TypeKind::kEnumeration: return EKind::kStr;
    case types::TypeKind::kAny: return EKind::kAny;
    default: return EKind::kOther;
  }
}

bool IsLogical(const std::string& f) {
  return f == term::kAnd || f == term::kOr || f == term::kNot;
}

bool IsComparison(const std::string& f) {
  return f == term::kEq || f == term::kNe || f == term::kLt ||
         f == term::kLe || f == term::kGt || f == term::kGe;
}

bool IsArithmetic(const std::string& f) {
  return f == "ADD" || f == "SUB" || f == "MUL" || f == "DIV" || f == "MOD" ||
         f == "NEG" || f == "ABS";
}

Result<EKind> StrictExprKind(const TermRef& e,
                             const std::vector<lera::Schema>& schemas) {
  if (e->is_constant()) {
    const Value& v = e->constant();
    if (v.is_null()) return EKind::kAny;
    switch (v.kind()) {
      case value::ValueKind::kBool: return EKind::kBool;
      case value::ValueKind::kInt:
      case value::ValueKind::kReal: return EKind::kNum;
      case value::ValueKind::kString: return EKind::kStr;
      default: return EKind::kOther;
    }
  }
  if (e->is_variable() || e->is_collection_variable()) {
    return Status::TypeError("unbound rule variable in concrete plan: " +
                             e->ToString());
  }
  const std::string& f = e->functor();
  if (lera::IsAttr(e)) {
    EDS_ASSIGN_OR_RETURN(lera::AttrRef a, lera::GetAttr(e));
    if (a.input < 1 || static_cast<size_t>(a.input) > schemas.size()) {
      return Status::TypeError("ATTR input out of range: " + e->ToString());
    }
    const lera::Schema& s = schemas[a.input - 1];
    if (a.column < 1 || static_cast<size_t>(a.column) > s.size()) {
      return Status::TypeError("ATTR column out of range: " + e->ToString());
    }
    return KindOfType(s[a.column - 1].type);
  }
  auto require = [&](EKind want, const char* what) -> Status {
    for (const TermRef& a : e->args()) {
      EDS_ASSIGN_OR_RETURN(EKind k, StrictExprKind(a, schemas));
      if (k != want && k != EKind::kAny) {
        return Status::TypeError(std::string(f) + ": " + what +
                                 " operand required: " + e->ToString());
      }
    }
    return Status::OK();
  };
  if (IsLogical(f)) {
    EDS_RETURN_IF_ERROR(require(EKind::kBool, "boolean"));
    return EKind::kBool;
  }
  if (IsComparison(f)) {
    // Compare is total over values; only the operands must themselves type.
    for (const TermRef& a : e->args()) {
      EDS_RETURN_IF_ERROR(StrictExprKind(a, schemas).status());
    }
    return EKind::kBool;
  }
  if (IsArithmetic(f)) {
    EDS_RETURN_IF_ERROR(require(EKind::kNum, "numeric"));
    return EKind::kNum;
  }
  if (f == "CONCAT" || f == "UPPER" || f == "LOWER") {
    EDS_RETURN_IF_ERROR(require(EKind::kStr, "string"));
    return EKind::kStr;
  }
  if (f == "LENGTH" && e->arity() == 1) {
    EDS_ASSIGN_OR_RETURN(EKind k, StrictExprKind(e->arg(0), schemas));
    if (k != EKind::kStr && k != EKind::kOther && k != EKind::kAny) {
      return Status::TypeError("LENGTH: string or collection required: " +
                               e->ToString());
    }
    return EKind::kNum;
  }
  if (f == "MEMBER" || f == "INCLUDE" || f == "ISEMPTY") {
    for (const TermRef& a : e->args()) {
      EDS_RETURN_IF_ERROR(StrictExprKind(a, schemas).status());
    }
    return EKind::kBool;
  }
  if (f == term::kList || f == term::kSet || f == "BAG" || f == term::kTuple) {
    for (const TermRef& a : e->args()) {
      EDS_RETURN_IF_ERROR(StrictExprKind(a, schemas).status());
    }
    return EKind::kOther;
  }
  // Unknown function: operands must at least be self-consistent; the result
  // kind is unknown.
  for (const TermRef& a : e->args()) {
    EDS_RETURN_IF_ERROR(StrictExprKind(a, schemas).status());
  }
  return EKind::kAny;
}

Status CheckExpr(const TermRef& expr, const std::vector<lera::Schema>& schemas,
                 const catalog::Catalog& cat, const lera::SchemaEnv* env,
                 bool require_bool) {
  // InferExprType first: it knows FIELD/VALUE/quantifiers and the catalog's
  // ADT functions, and rejects out-of-range ATTRs with good messages.
  EDS_RETURN_IF_ERROR(
      lera::InferExprType(expr, schemas, cat, nullptr, env).status());
  EDS_ASSIGN_OR_RETURN(EKind k, StrictExprKind(expr, schemas));
  if (require_bool && k != EKind::kBool && k != EKind::kAny) {
    return Status::TypeError("qualification is not boolean: " +
                             expr->ToString());
  }
  return Status::OK();
}

// `env` binds FIX relation names met on the way down: rewrite passes invent
// fresh closure names (ALEXANDER's CLO#M, say) that no catalog knows, so
// schema lookups inside a FIX body only resolve through this environment.
// Results are env-dependent, hence no SchemaMemo on this path — the plans
// are a few nodes deep.
Status CheckPlanExprs(const TermRef& t, const catalog::Catalog& cat,
                      const lera::SchemaEnv* env) {
  if (!t->is_apply()) return Status::OK();
  const std::string& f = t->functor();
  auto schema_of = [&](const TermRef& r) {
    return lera::InferSchema(r, cat, env);
  };
  if (f == lera::kSearch && t->arity() == 3 && t->arg(0)->is_apply() &&
      t->arg(0)->functor() == term::kList) {
    std::vector<lera::Schema> ss;
    for (const TermRef& in : t->arg(0)->args()) {
      EDS_ASSIGN_OR_RETURN(lera::Schema s, schema_of(in));
      ss.push_back(std::move(s));
    }
    EDS_RETURN_IF_ERROR(
        CheckExpr(t->arg(1), ss, cat, env, /*require_bool=*/true));
    if (t->arg(2)->is_apply() && t->arg(2)->functor() == term::kList) {
      for (const TermRef& p : t->arg(2)->args()) {
        EDS_RETURN_IF_ERROR(CheckExpr(p, ss, cat, env, /*require_bool=*/false));
      }
    }
    for (const TermRef& in : t->arg(0)->args()) {
      EDS_RETURN_IF_ERROR(CheckPlanExprs(in, cat, env));
    }
    return Status::OK();
  }
  if (f == lera::kFilter && t->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(lera::Schema s, schema_of(t->arg(0)));
    EDS_RETURN_IF_ERROR(
        CheckExpr(t->arg(1), {s}, cat, env, /*require_bool=*/true));
    return CheckPlanExprs(t->arg(0), cat, env);
  }
  if (f == lera::kProject && t->arity() == 2 && t->arg(1)->is_apply() &&
      t->arg(1)->functor() == term::kList) {
    EDS_ASSIGN_OR_RETURN(lera::Schema s, schema_of(t->arg(0)));
    for (const TermRef& p : t->arg(1)->args()) {
      EDS_RETURN_IF_ERROR(CheckExpr(p, {s}, cat, env, /*require_bool=*/false));
    }
    return CheckPlanExprs(t->arg(0), cat, env);
  }
  if (f == lera::kJoin && t->arity() == 3) {
    EDS_ASSIGN_OR_RETURN(lera::Schema s0, schema_of(t->arg(0)));
    EDS_ASSIGN_OR_RETURN(lera::Schema s1, schema_of(t->arg(1)));
    EDS_RETURN_IF_ERROR(
        CheckExpr(t->arg(2), {s0, s1}, cat, env, /*require_bool=*/true));
    EDS_RETURN_IF_ERROR(CheckPlanExprs(t->arg(0), cat, env));
    return CheckPlanExprs(t->arg(1), cat, env);
  }
  if (f == lera::kFix && t->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(std::string name, lera::FixRelationName(t));
    EDS_ASSIGN_OR_RETURN(lera::Schema s, schema_of(t));
    lera::SchemaEnv extended = env != nullptr ? *env : lera::SchemaEnv{};
    extended[ToUpperAscii(name)] = std::move(s);
    return CheckPlanExprs(t->arg(1), cat, &extended);
  }
  for (const TermRef& a : t->args()) {
    EDS_RETURN_IF_ERROR(CheckPlanExprs(a, cat, env));
  }
  return Status::OK();
}

}  // namespace

Status TypeCheckPlan(const TermRef& plan, const catalog::Catalog& cat) {
  EDS_RETURN_IF_ERROR(lera::Validate(plan));
  EDS_RETURN_IF_ERROR(lera::InferSchema(plan, cat).status());
  return CheckPlanExprs(plan, cat, nullptr);
}

// ---------------------------------------------------------------------------
// Instantiator
// ---------------------------------------------------------------------------

namespace {

// Grammatical category of a variable position in a rule pattern.
enum class Sort {
  kRel,            // a relational operand
  kRelListWhole,   // a whole LIST(...) of relational inputs
  kRelSetWhole,    // a whole SET(...) of UNION branches
  kQual,           // a boolean qualification
  kScalar,         // a projection / scalar expression
  kStr,            // a string scalar
  kInt,            // a small integer (column indexes etc.)
  kName,           // a relation / column name constant
  kProjListWhole,  // a whole projection LIST(...)
  kNestColsWhole,  // a whole NEST column-index LIST(...)
  kFixRel,         // the RELATION(...) head of a FIX
  kFixBody,        // the recursive body of a FIX
};

struct SortMap {
  std::unordered_map<std::string, Sort> vars;
  std::unordered_map<std::string, Sort> coll_vars;  // element sort
};

enum class RootClass { kRelational, kQual, kScalar };

struct FnChoice {
  const char* name;
  Sort arg_sort;
  bool boolean_result;
};

using FnMap = std::unordered_map<std::string, FnChoice>;

void CollectFunctorVars(const TermRef& t,
                        std::vector<std::pair<std::string, size_t>>* out,
                        std::unordered_set<std::string>* seen) {
  if (!t->is_apply()) return;
  const std::string& f = t->functor();
  if (!f.empty() && f[0] == '?' && seen->insert(f).second) {
    out->emplace_back(f, t->arity());
  }
  for (const TermRef& a : t->args()) CollectFunctorVars(a, out, seen);
}

void AssignSorts(const TermRef& t, Sort self, const FnMap& fns, SortMap* out);

// Pre-pass: pin the sorts of variables appearing directly under a functor
// variable before the general walk, so `?P(x) AND (x = y)` gives x (and,
// through comparison unification, y) the sort ?P's chosen function expects
// regardless of which conjunct the walk reaches first.
void AssignFunctorArgSorts(const TermRef& t, const FnMap& fns, SortMap* out) {
  if (!t->is_apply()) return;
  const std::string& f = t->functor();
  if (!f.empty() && f[0] == '?') {
    auto it = fns.find(f);
    Sort as = it != fns.end() ? it->second.arg_sort : Sort::kScalar;
    for (const TermRef& a : t->args()) {
      if (a->is_variable()) out->vars.emplace(a->functor(), as);
    }
  }
  for (const TermRef& a : t->args()) AssignFunctorArgSorts(a, fns, out);
}

void RecordListChildren(const TermRef& t, Sort elem, Sort whole,
                        const FnMap& fns, SortMap* out) {
  if (t->is_variable()) {
    out->vars.emplace(t->functor(), whole);
    return;
  }
  if (t->is_apply() &&
      (t->functor() == term::kList || t->functor() == term::kSet)) {
    for (const TermRef& c : t->args()) {
      if (c->is_collection_variable()) {
        out->coll_vars.emplace(c->functor(), elem);
      } else {
        AssignSorts(c, elem, fns, out);
      }
    }
    return;
  }
  AssignSorts(t, elem, fns, out);
}

void AssignSorts(const TermRef& t, Sort self, const FnMap& fns,
                 SortMap* out) {
  if (t->is_variable()) {
    out->vars.emplace(t->functor(), self);  // first occurrence wins
    return;
  }
  if (t->is_collection_variable()) {
    out->coll_vars.emplace(t->functor(), self);
    return;
  }
  if (!t->is_apply()) return;
  const std::string& f = t->functor();
  auto walk = [&](size_t i, Sort s) { AssignSorts(t->arg(i), s, fns, out); };
  if (!f.empty() && f[0] == '?') {
    auto it = fns.find(f);
    Sort as = it != fns.end() ? it->second.arg_sort : Sort::kScalar;
    for (const TermRef& a : t->args()) AssignSorts(a, as, fns, out);
    return;
  }
  if (f == lera::kSearch && t->arity() == 3) {
    RecordListChildren(t->arg(0), Sort::kRel, Sort::kRelListWhole, fns, out);
    walk(1, Sort::kQual);
    RecordListChildren(t->arg(2), Sort::kScalar, Sort::kProjListWhole, fns,
                       out);
    return;
  }
  if (f == lera::kFilter && t->arity() == 2) {
    walk(0, Sort::kRel);
    walk(1, Sort::kQual);
    return;
  }
  if (f == lera::kProject && t->arity() == 2) {
    walk(0, Sort::kRel);
    RecordListChildren(t->arg(1), Sort::kScalar, Sort::kProjListWhole, fns,
                       out);
    return;
  }
  if (f == lera::kJoin && t->arity() == 3) {
    walk(0, Sort::kRel);
    walk(1, Sort::kRel);
    walk(2, Sort::kQual);
    return;
  }
  if (f == lera::kUnion && t->arity() == 1) {
    RecordListChildren(t->arg(0), Sort::kRel, Sort::kRelSetWhole, fns, out);
    return;
  }
  if ((f == lera::kDifference || f == lera::kIntersect) && t->arity() == 2) {
    walk(0, Sort::kRel);
    walk(1, Sort::kRel);
    return;
  }
  if (f == lera::kDedup && t->arity() == 1) {
    walk(0, Sort::kRel);
    return;
  }
  if (f == lera::kFix && t->arity() == 2) {
    if (t->arg(0)->is_variable()) {
      out->vars.emplace(t->arg(0)->functor(), Sort::kFixRel);
    } else {
      walk(0, Sort::kRel);
    }
    if (t->arg(1)->is_variable()) {
      out->vars.emplace(t->arg(1)->functor(), Sort::kFixBody);
    } else {
      walk(1, Sort::kRel);
    }
    return;
  }
  if (f == term::kRelation && t->arity() == 1) {
    if (t->arg(0)->is_variable()) {
      out->vars.emplace(t->arg(0)->functor(), Sort::kName);
    }
    return;
  }
  if (f == lera::kNest && t->arity() == 3) {
    walk(0, Sort::kRel);
    RecordListChildren(t->arg(1), Sort::kInt, Sort::kNestColsWhole, fns, out);
    if (t->arg(2)->is_variable()) {
      out->vars.emplace(t->arg(2)->functor(), Sort::kName);
    }
    return;
  }
  if (f == lera::kUnnest && t->arity() == 2) {
    walk(0, Sort::kRel);
    walk(1, Sort::kInt);
    return;
  }
  if (lera::IsAttr(t)) return;
  if (IsLogical(f)) {
    for (const TermRef& a : t->args()) AssignSorts(a, Sort::kQual, fns, out);
    return;
  }
  if (IsComparison(f)) {
    // Two bare variables compared for equality must instantiate at the same
    // kind: reuse whichever sort is already pinned (typically by the
    // functor-variable pre-pass) for the other side.
    if (t->arity() == 2 && t->arg(0)->is_variable() &&
        t->arg(1)->is_variable()) {
      Sort s = Sort::kScalar;
      auto i0 = out->vars.find(t->arg(0)->functor());
      auto i1 = out->vars.find(t->arg(1)->functor());
      if (i0 != out->vars.end()) {
        s = i0->second;
      } else if (i1 != out->vars.end()) {
        s = i1->second;
      }
      out->vars.emplace(t->arg(0)->functor(), s);
      out->vars.emplace(t->arg(1)->functor(), s);
      return;
    }
    for (const TermRef& a : t->args()) AssignSorts(a, Sort::kScalar, fns, out);
    return;
  }
  if (IsArithmetic(f)) {
    for (const TermRef& a : t->args()) AssignSorts(a, Sort::kScalar, fns, out);
    return;
  }
  if (f == "CONCAT" || f == "UPPER" || f == "LOWER" || f == "LENGTH") {
    for (const TermRef& a : t->args()) AssignSorts(a, Sort::kStr, fns, out);
    return;
  }
  // MEMBER/INCLUDE, collection literals, unknown functions: scalars.
  for (const TermRef& a : t->args()) {
    if (a->is_collection_variable()) {
      out->coll_vars.emplace(a->functor(), Sort::kScalar);
    } else {
      AssignSorts(a, Sort::kScalar, fns, out);
    }
  }
}

RootClass ClassifyRoot(const TermRef& lhs, const FnMap& fns, SortMap* sorts) {
  if (lhs->is_variable()) {
    sorts->vars.emplace(lhs->functor(), Sort::kRel);
    return RootClass::kRelational;
  }
  if (lhs->is_constant()) {
    return lhs->constant().kind() == value::ValueKind::kBool
               ? RootClass::kQual
               : RootClass::kScalar;
  }
  if (!lhs->is_apply()) return RootClass::kScalar;
  const std::string& f = lhs->functor();
  if (!f.empty() && f[0] == '?') {
    auto it = fns.find(f);
    return (it != fns.end() && it->second.boolean_result) ? RootClass::kQual
                                                          : RootClass::kScalar;
  }
  if (lera::IsRelationalOp(lhs)) return RootClass::kRelational;
  if (IsLogical(f) || IsComparison(f) || f == "MEMBER" || f == "INCLUDE" ||
      f == "ISEMPTY" || f == "EXISTS" || f == "FORALL") {
    return RootClass::kQual;
  }
  return RootClass::kScalar;
}

TermRef WrapSubject(const TermRef& subject, RootClass rc) {
  using term::Term;
  switch (rc) {
    case RootClass::kRelational:
      return subject;
    case RootClass::kQual:
      return Term::Apply(
          lera::kSearch,
          {Term::List({Term::Relation("V0")}), subject,
           Term::List({Term::Attr(1, 1), Term::Attr(1, 2)})});
    case RootClass::kScalar:
      return Term::Apply(lera::kSearch,
                         {Term::List({Term::Relation("V0")}), Term::True(),
                          Term::List({subject, Term::Attr(1, 1)})});
  }
  return subject;
}

}  // namespace

// The ground pool terms each sort draws from. Order matters: the
// deterministic sweep starts at the front, so the most selective /
// discriminating entries go first and degenerate ones (TRUE, empty) last.
struct Instantiator::Pools {
  std::vector<TermRef> rel, rel_list, rel_set, qual, scalar, str, ints, name,
      proj_list, nest_cols, fix_rel, fix_body;
  std::vector<FnChoice> unary, binary;

  const std::vector<TermRef>& For(Sort s) const {
    switch (s) {
      case Sort::kRel: return rel;
      case Sort::kRelListWhole: return rel_list;
      case Sort::kRelSetWhole: return rel_set;
      case Sort::kQual: return qual;
      case Sort::kScalar: return scalar;
      case Sort::kStr: return str;
      case Sort::kInt: return ints;
      case Sort::kName: return name;
      case Sort::kProjListWhole: return proj_list;
      case Sort::kNestColsWhole: return nest_cols;
      case Sort::kFixRel: return fix_rel;
      case Sort::kFixBody: return fix_body;
    }
    return scalar;
  }
};

Instantiator::Instantiator(const VerifyEnv* env, uint64_t seed)
    : env_(env), seed_(seed) {
  auto pools = std::make_shared<Pools>();
  auto parse_into = [](std::vector<TermRef>* out,
                       std::initializer_list<const char*> texts) {
    for (const char* text : texts) {
      auto t = term::ParseTerm(text);
      if (t.ok()) out->push_back(*t);
    }
  };
  // Transitive closure of VEDGE: the canonical FIX instance. CLO is declared
  // in the catalog (stored empty) so the recursive reference schema-checks.
  static const char* kClosureBody =
      "UNION(SET(RELATION('VEDGE'), "
      "SEARCH(LIST(RELATION('CLO'), RELATION('VEDGE')), ($1.2 = $2.1), "
      "LIST($1.1, $2.2))))";
  static const std::string kClosure =
      std::string("FIX(RELATION('CLO'), ") + kClosureBody + ")";
  parse_into(&pools->rel,
             {"RELATION('V0')", "RELATION('V1')", "RELATION('V2')",
              "SEARCH(LIST(RELATION('V0')), ($1.1 < 2), LIST($1.1, $1.2))",
              "PROJECT(RELATION('V0'), LIST($1.2, $1.1))",
              "UNION(SET(RELATION('V0'), RELATION('V1')))",
              "DEDUP(RELATION('V1'))", "RELATION('VE')",
              "SEARCH(LIST(RELATION('V0'), RELATION('V1')), ($1.1 = $2.1), "
              "LIST($1.2, $2.2))",
              kClosure.c_str()});
  parse_into(&pools->rel_list,
             {"LIST(RELATION('V0'))", "LIST(RELATION('V0'), RELATION('V1'))",
              "LIST(RELATION('V2'))"});
  parse_into(&pools->rel_set,
             {"SET(RELATION('V0'), RELATION('V1'))", "SET(RELATION('V2'))"});
  parse_into(&pools->qual,
             {"($1.1 = 1)", "($1.1 < $1.2)", "($1.1 = $1.2)",
              // Duplicate and constant-foldable conjuncts: the shapes
              // SIMPLIFY_QUAL-style semantic methods act on. Kept early so
              // the deterministic sweep reaches them before the instance cap.
              "(($1.1 = 1) AND ($1.1 = 1))", "((1 = 1) AND ($1.2 > 0))",
              "(($1.1 = $1.2) AND ($1.2 = 1))", "(($1.1 = 1) OR ($1.2 = 2))",
              "NOT ($1.1 = $1.2)", "(($1.1 < 2) AND ($1.2 > 0))",
              "(($1.1 = $1.1) AND ($1.2 > 0))", "($1.2 >= 1)", "TRUE"});
  parse_into(&pools->scalar, {"$1.1", "$1.2", "1", "0", "($1.1 + $1.2)",
                              "($1.1 - 1)", "TRUE", "2"});
  parse_into(&pools->str, {"'a'", "'b'", "''"});
  parse_into(&pools->ints, {"1", "2"});
  parse_into(&pools->name, {"'V0'", "'V1'"});
  parse_into(&pools->proj_list,
             {"LIST($1.1, $1.2)", "LIST($1.2, $1.1)", "LIST($1.1)",
              "LIST($1.1, $1.1)", "LIST(($1.1 + $1.2))"});
  parse_into(&pools->nest_cols, {"LIST(2)", "LIST(1)"});
  parse_into(&pools->fix_rel, {"RELATION('CLO')"});
  parse_into(&pools->fix_body, {kClosureBody});
  pools->unary = {{"NEG", Sort::kScalar, false},
                  {"ABS", Sort::kScalar, false},
                  {"NOT", Sort::kQual, true},
                  {"LENGTH", Sort::kStr, false}};
  pools->binary = {{"ADD", Sort::kScalar, false},
                   {"SUB", Sort::kScalar, false},
                   {"MUL", Sort::kScalar, false},
                   {"EQ", Sort::kScalar, true},
                   {"LT", Sort::kScalar, true},
                   {"LE", Sort::kScalar, true},
                   {"CONCAT", Sort::kStr, false}};
  pools_ = std::move(pools);
}

Status Instantiator::Generate(const rewrite::Rule& rule, size_t max_instances,
                              std::vector<RuleInstance>* out) {
  EDS_FAIL_POINT("verify.instance");
  const TermRef& lhs = rule.lhs;
  if (lhs == nullptr) {
    return Status::InvalidArgument("rule has no left-hand side");
  }
  std::vector<std::pair<std::string, size_t>> fn_vars;
  {
    std::unordered_set<std::string> seen_fns;
    CollectFunctorVars(lhs, &fn_vars, &seen_fns);
  }
  for (const auto& [name, arity] : fn_vars) {
    (void)name;
    if (arity < 1 || arity > 2) return Status::OK();  // no pool to draw from
  }
  std::vector<std::string> vars, coll_vars;
  term::CollectVariables(lhs, &vars, &coll_vars);

  std::unordered_set<uint64_t> seen;
  const size_t kDeterministicAttempts = 32;
  size_t attempt_budget = kDeterministicAttempts + max_instances * 6;
  for (size_t attempt = 0;
       attempt < attempt_budget && out->size() < max_instances; ++attempt) {
    bool random_phase = attempt >= kDeterministicAttempts;
    uint64_t rng =
        seed_ ^ Fnv1a(rule.name) ^ (0x9e3779b97f4a7c15ULL * (attempt + 1));
    uint64_t det = attempt;
    auto draw = [&](size_t radix) -> size_t {
      if (radix <= 1) return 0;
      if (random_phase) return SplitMix64(&rng) % radix;
      size_t d = det % radix;
      det /= radix;
      return d;
    };

    FnMap fns;
    for (const auto& [name, arity] : fn_vars) {
      const auto& pool = arity == 1 ? pools_->unary : pools_->binary;
      fns[name] = pool[draw(pool.size())];
    }
    SortMap sorts;
    RootClass rc = ClassifyRoot(lhs, fns, &sorts);
    AssignFunctorArgSorts(lhs, fns, &sorts);
    AssignSorts(lhs, Sort::kRel, fns, &sorts);

    term::Bindings env;
    for (const auto& [name, fn] : fns) {
      env.SetVar(name, term::Term::Str(fn.name));
    }
    bool viable = true;
    for (const std::string& v : vars) {
      // '?'-prefixed names are functor variables: already bound to a
      // function name above, never to a pool term.
      if (!v.empty() && v[0] == '?') continue;
      auto it = sorts.vars.find(v);
      Sort s = it != sorts.vars.end() ? it->second : Sort::kScalar;
      const auto& pool = pools_->For(s);
      if (pool.empty()) {
        viable = false;
        break;
      }
      env.SetVar(v, pool[draw(pool.size())]);
    }
    if (!viable) continue;
    for (const std::string& cv : coll_vars) {
      auto it = sorts.coll_vars.find(cv);
      Sort s = it != sorts.coll_vars.end() ? it->second : Sort::kScalar;
      const auto& pool = pools_->For(s);
      if (pool.empty()) {
        viable = false;
        break;
      }
      size_t len = draw(3);  // 0, 1 or 2 spliced elements
      size_t start = draw(pool.size());
      term::TermList elems;
      for (size_t j = 0; j < len; ++j) {
        elems.push_back(pool[(start + j) % pool.size()]);
      }
      env.SetCollVar(cv, std::move(elems));
    }
    if (!viable) continue;

    auto subst = term::ApplySubstitution(lhs, env);
    if (!subst.ok()) continue;
    TermRef subject = *subst;
    if (!term::IsGround(subject)) continue;
    TermRef plan = WrapSubject(subject, rc);
    if (!seen.insert(term::Hash(plan)).second) continue;
    if (!TypeCheckPlan(plan, env_->catalog()).ok()) continue;
    out->push_back({subject, plan, env.ToString()});
  }
  return Status::OK();
}

}  // namespace eds::verify
