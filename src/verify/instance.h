#ifndef EDS_VERIFY_INSTANCE_H_
#define EDS_VERIFY_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/storage.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace eds::verify {

// The verifier's synthetic world: a fixed catalog of small relations plus a
// family of concrete database instances over them. Every rule is checked
// against the same world, so diagnostics are reproducible and the
// counterexample databases are small enough to print.
//
// Relations (all columns NUMERIC unless noted):
//   V0, V1, V2 (A, B)   general-purpose binary relations
//   VE (A, B)           empty in every instance (empty-input corner)
//   VS (S CHAR, N)      a string-keyed relation for CHAR expressions
//   VEDGE (SRC, DST)    a small graph feeding fixpoint templates
//   CLO (SRC, DST)      the fixpoint accumulator (stored empty)
//
// Instances cover the corners bounded checking needs: a base instance with
// distinct rows, one with duplicate rows (bag-semantics divergence), one
// with NULLs, an all-empty one, and `random_databases` seeded random fills.
class VerifyEnv {
 public:
  struct Instance {
    std::string name;  // "base", "dups", "nulls", "empty", "rand0", ...
    std::unique_ptr<exec::Database> db;
  };

  // Row contents of one database, for counterexample minimization and
  // printing. Tables appear in catalog declaration order.
  struct Snapshot {
    std::vector<std::pair<std::string, exec::Rows>> tables;
  };

  static Result<std::unique_ptr<VerifyEnv>> Create(uint64_t seed,
                                                   size_t random_databases);

  VerifyEnv(const VerifyEnv&) = delete;
  VerifyEnv& operator=(const VerifyEnv&) = delete;

  const catalog::Catalog& catalog() const { return catalog_; }
  const std::vector<Instance>& instances() const { return instances_; }

  Snapshot SnapshotOf(size_t instance_index) const;
  Result<std::unique_ptr<exec::Database>> Materialize(
      const Snapshot& snap) const;

  // "V0: (1, 2), (1, 2)" lines for the non-empty tables; "" when the whole
  // database is empty. Rows beyond `max_rows_per_table` print as "+N more".
  static std::string Describe(const Snapshot& snap,
                              size_t max_rows_per_table);

 private:
  VerifyEnv() = default;

  catalog::Catalog catalog_;
  std::vector<std::pair<std::string, size_t>> table_arity_;  // decl order
  std::vector<Instance> instances_;
};

// One concrete check input derived from a rule's left-hand side.
struct RuleInstance {
  term::TermRef subject;  // the ground LHS instance itself
  term::TermRef plan;     // executable relational plan (subject, or the
                          // subject wrapped in a SEARCH when it is a
                          // qualification / scalar expression)
  std::string binding;    // the literal variable assignment, printable
};

// Pattern-directed instantiation: infers a sort (relation, qualification,
// scalar, ...) for every variable position in the LHS, substitutes ground
// pool terms, and wraps non-relational subjects into executable plans.
// Generation is deterministic for a given (env, seed): a mixed-radix sweep
// over the pools first, then seeded random draws. Ill-typed combinations
// are dropped (the executor would reject them, not the rule).
class Instantiator {
 public:
  Instantiator(const VerifyEnv* env, uint64_t seed);

  // Appends up to `max_instances` distinct type-correct instances for
  // `rule`. Errors are infrastructure failures (fail-point injection),
  // never a statement about the rule.
  Status Generate(const rewrite::Rule& rule, size_t max_instances,
                  std::vector<RuleInstance>* out);

 private:
  struct Pools;

  const VerifyEnv* env_;
  uint64_t seed_;
  std::shared_ptr<const Pools> pools_;
};

// Structural + expression-level plan check: lera::Validate, InferSchema,
// and a strict kind discipline on every qualification and projection
// (logical operators require boolean operands, arithmetic numeric, string
// functions CHAR). Deliberately stricter than lera::InferExprType — it
// mirrors what the executor's function library enforces at runtime, so a
// plan that passes here does not fail execution on type grounds.
Status TypeCheckPlan(const term::TermRef& plan, const catalog::Catalog& cat);

}  // namespace eds::verify

#endif  // EDS_VERIFY_INSTANCE_H_
