#include "verify/verify.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "exec/executor.h"
#include "gov/failpoint.h"
#include "gov/governor.h"
#include "lera/lera.h"
#include "lera/schema.h"
#include "ruledsl/parser.h"
#include "verify/instance.h"

namespace eds::verify {

using term::TermRef;

namespace {

std::string RowsToString(const exec::Rows& rows, size_t max_rows) {
  if (rows.empty()) return "(none)";
  std::ostringstream out;
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) out << ", ";
      out << rows[i][j].ToString();
    }
    out << ")";
  }
  if (rows.size() > shown) out << " +" << (rows.size() - shown) << " more";
  return out.str();
}

void SortRows(exec::Rows* rows) {
  std::sort(rows->begin(), rows->end(),
            [](const exec::Row& a, const exec::Row& b) {
              return exec::CompareRows(a, b) < 0;
            });
}

bool RowsEqual(const exec::Rows& a, const exec::Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (exec::CompareRows(a[i], b[i]) != 0) return false;
  }
  return true;
}

bool SnapshotHasNull(const VerifyEnv::Snapshot& snap) {
  for (const auto& [tname, rows] : snap.tables) {
    for (const exec::Row& row : rows) {
      for (const value::Value& v : row) {
        if (v.is_null()) return true;
      }
    }
  }
  return false;
}

// The moment the failpoint macro returns from, isolated so an injected
// fault is unambiguously infrastructure and never mistaken for a genuine
// executor error on the rewritten side.
Status HitExecuteFailPoint() {
  EDS_FAIL_POINT("verify.execute");
  return Status::OK();
}

enum class SideOutcome { kOk, kInfra, kBudget, kError };

SideOutcome ExecuteSide(const TermRef& plan, const catalog::Catalog& cat,
                        const exec::Database& db, const VerifyOptions& opts,
                        exec::Rows* rows, Status* error) {
  if (!HitExecuteFailPoint().ok()) return SideOutcome::kInfra;
  gov::GovernorLimits limits;
  limits.deadline_ms = opts.exec_deadline_ms;
  limits.max_rows = opts.exec_max_rows;
  gov::QueryGuard guard(limits);
  exec::ExecOptions eo;
  eo.max_fix_iterations = opts.max_fix_iterations;
  eo.guard = &guard;
  exec::Executor ex(&cat, &db, eo);
  Result<exec::Rows> r = ex.Execute(plan);
  if (r.ok()) {
    *rows = std::move(*r);
    return SideOutcome::kOk;
  }
  if (r.status().code() == StatusCode::kResourceExhausted) {
    return SideOutcome::kBudget;
  }
  *error = r.status();
  return SideOutcome::kError;
}

// True when the two plans still disagree at set level on `db`; errors on
// either side read as "no divergence" so the minimizer never shrinks past
// the property it is preserving.
bool ContentDiverges(const TermRef& lhs, const TermRef& rhs,
                     const catalog::Catalog& cat, const exec::Database& db,
                     const VerifyOptions& opts, exec::Rows* lhs_rows,
                     exec::Rows* rhs_rows) {
  exec::Rows a, b;
  Status err;
  if (ExecuteSide(lhs, cat, db, opts, &a, &err) != SideOutcome::kOk) {
    return false;
  }
  if (ExecuteSide(rhs, cat, db, opts, &b, &err) != SideOutcome::kOk) {
    return false;
  }
  exec::Rows as = a, bs = b;
  exec::DedupRows(&as);
  exec::DedupRows(&bs);
  if (RowsEqual(as, bs)) return false;
  SortRows(&a);
  SortRows(&b);
  *lhs_rows = std::move(a);
  *rhs_rows = std::move(b);
  return true;
}

// Greedy row removal: drop any single row whose removal keeps the
// counterexample diverging. Each trial costs two executions against
// `minimize_budget`. A tripped fail point keeps the unminimized database —
// a bigger counterexample is still a true one.
Status MinimizeCounterexample(const VerifyEnv& env, const TermRef& lhs,
                              const TermRef& rhs, const VerifyOptions& opts,
                              VerifyEnv::Snapshot* snap, exec::Rows* lhs_rows,
                              exec::Rows* rhs_rows) {
  EDS_FAIL_POINT("verify.minimize");
  size_t execs = 0;
  bool progress = true;
  while (progress && execs + 2 <= opts.minimize_budget) {
    progress = false;
    // Index-based: a successful trial replaces *snap, so references into
    // the old table vector must not survive the replacement.
    for (size_t t = 0; t < snap->tables.size() && !progress; ++t) {
      for (size_t i = 0; i < snap->tables[t].second.size() &&
                         execs + 2 <= opts.minimize_budget;) {
        VerifyEnv::Snapshot trial = *snap;
        trial.tables[t].second.erase(trial.tables[t].second.begin() + i);
        auto db = env.Materialize(trial);
        if (!db.ok()) return Status::OK();
        execs += 2;
        exec::Rows a, b;
        if (ContentDiverges(lhs, rhs, env.catalog(), **db, opts, &a, &b)) {
          *snap = std::move(trial);
          *lhs_rows = std::move(a);
          *rhs_rows = std::move(b);
          progress = true;  // re-enter the outer loops on the new snapshot
          break;
        }
        ++i;
      }
    }
  }
  return Status::OK();
}

std::string Indent(const std::string& text) {
  std::string out;
  for (char c : text) {
    out += c;
    if (c == '\n') out += "    ";
  }
  return out;
}

std::string InstanceBlurb(const RuleInstance& ri, const TermRef& rewritten) {
  std::string out = "\n  instance:  " + ri.plan->ToString();
  if (rewritten != nullptr) {
    out += "\n  rewritten: " + rewritten->ToString();
  }
  out += "\n  binding:   " + ri.binding;
  return out;
}

struct RuleRun {
  lint::LintReport* report;
  const rewrite::Rule* rule;
  RuleVerdict verdict;
  bool emitted_error = false;

  void Emit(lint::Severity sev, const char* id, std::string message) {
    lint::Diagnostic d;
    d.severity = sev;
    d.id = id;
    d.rule = rule->name;
    d.loc = rule->loc;
    d.message = std::move(message);
    report->Add(std::move(d));
    if (sev == lint::Severity::kError) {
      emitted_error = true;
      verdict.divergence = true;
    }
  }
};

Status VerifyRuleWithEnv(const rewrite::Rule& rule,
                         const rewrite::BuiltinRegistry& builtins,
                         const VerifyOptions& opts, const VerifyEnv& env,
                         lint::LintReport* report, RuleVerdict* out) {
  RuleRun run;
  run.report = report;
  run.rule = &rule;
  run.verdict.rule = rule.name;

  Status valid = rewrite::ValidateRule(rule, builtins);
  if (!valid.ok()) {
    run.Emit(lint::Severity::kError, kVerifyInvalidRule,
             "rule fails validation, soundness not checkable: " +
                 valid.ToString());
    if (out != nullptr) *out = run.verdict;
    return Status::OK();
  }

  std::vector<RuleInstance> instances;
  Instantiator inst(&env, opts.seed);
  Status gen = inst.Generate(rule, opts.max_instances_per_rule, &instances);
  if (!gen.ok()) {
    run.verdict.inconclusive = true;
    run.Emit(lint::Severity::kNote, kVerifyInconclusive,
             "verification inconclusive: instance generation failed: " +
                 gen.ToString());
    if (out != nullptr) *out = run.verdict;
    return Status::OK();
  }
  run.verdict.instances = instances.size();

  rewrite::RewriteProgram program;
  program.blocks.push_back({"verify", {rule}, rewrite::kSaturate});
  program.seq_limit = 1;
  rewrite::Engine engine(&env.catalog(), &builtins, std::move(program));

  size_t checked_instances = 0;
  size_t rhs_type_failures = 0;
  size_t infra_skips = 0;
  Status last_type_failure;
  const RuleInstance* last_type_failure_instance = nullptr;
  TermRef last_type_failure_term;
  bool reported_multiplicity = false;
  // A divergence whose minimized counterexample still contains a NULL is
  // held back while the scan keeps hunting for a NULL-free witness: the
  // built-in libraries document 1991-style two-valued semantics, so a
  // NULL-only divergence demotes to an EDS-S006 warning instead of S001.
  std::string null_only_message;

  for (const RuleInstance& ri : instances) {
    if (run.emitted_error) break;
    if (checked_instances >= opts.max_checked_per_rule) break;

    rewrite::RewriteOptions ro;
    ro.max_applications = 1;  // check exactly one application of the rule
    auto rw = engine.Rewrite(ri.plan, ro);
    if (!rw.ok()) continue;  // the match machinery refused; not a verdict
    if (rw->stats.applications == 0) continue;
    run.verdict.fired++;
    TermRef rewritten = rw->term;

    // Structural sanity of the output before running it.
    Status structural = lera::Validate(rewritten);
    Result<lera::Schema> out_schema =
        structural.ok() ? lera::InferSchema(rewritten, env.catalog())
                        : Result<lera::Schema>(structural);
    if (!out_schema.ok()) {
      run.Emit(lint::Severity::kError, kVerifyBrokenOutput,
               "rewritten plan is not a valid plan: " +
                   out_schema.status().ToString() +
                   InstanceBlurb(ri, rewritten));
      break;
    }
    auto in_schema = lera::InferSchema(ri.plan, env.catalog());
    if (in_schema.ok() && in_schema->size() != out_schema->size()) {
      run.Emit(lint::Severity::kError, kVerifyArityChange,
               "rewrite changes output arity from " +
                   std::to_string(in_schema->size()) + " to " +
                   std::to_string(out_schema->size()) +
                   InstanceBlurb(ri, rewritten));
      break;
    }
    Status typed = TypeCheckPlan(rewritten, env.catalog());
    if (!typed.ok()) {
      // The instantiation may have produced operand kinds the rule's
      // constraints never promised to handle (a functor variable bound to
      // NOT over a numeric, say). Skip the instance; if *every* fired
      // instance ends here the rule itself breaks typing — reported below.
      rhs_type_failures++;
      last_type_failure = typed;
      last_type_failure_instance = &ri;
      last_type_failure_term = rewritten;
      continue;
    }

    bool instance_checked = false;
    for (size_t dbi = 0; dbi < env.instances().size(); ++dbi) {
      const VerifyEnv::Instance& dbinst = env.instances()[dbi];
      exec::Rows lhs_rows, rhs_rows;
      Status err;
      SideOutcome lo =
          ExecuteSide(ri.plan, env.catalog(), *dbinst.db, opts, &lhs_rows,
                      &err);
      if (lo == SideOutcome::kInfra || lo == SideOutcome::kBudget) {
        infra_skips++;
        run.verdict.inconclusive = true;
        continue;
      }
      if (lo == SideOutcome::kError) continue;  // LHS itself errors: no claim
      SideOutcome roc = ExecuteSide(rewritten, env.catalog(), *dbinst.db,
                                    opts, &rhs_rows, &err);
      if (roc == SideOutcome::kInfra || roc == SideOutcome::kBudget) {
        infra_skips++;
        run.verdict.inconclusive = true;
        continue;
      }
      if (roc == SideOutcome::kError) {
        run.Emit(lint::Severity::kError, kVerifyBrokenOutput,
                 "rewritten plan fails to execute on database '" +
                     dbinst.name + "': " + err.ToString() +
                     InstanceBlurb(ri, rewritten));
        break;
      }
      run.verdict.checked++;
      instance_checked = true;

      SortRows(&lhs_rows);
      SortRows(&rhs_rows);
      if (RowsEqual(lhs_rows, rhs_rows)) continue;  // bag-equal
      exec::Rows lhs_set = lhs_rows, rhs_set = rhs_rows;
      exec::DedupRows(&lhs_set);
      exec::DedupRows(&rhs_set);
      if (RowsEqual(lhs_set, rhs_set)) {
        // Same result set, different multiplicities: a bag-semantics
        // change (set-oriented operators legitimately do this).
        if (!reported_multiplicity) {
          reported_multiplicity = true;
          run.verdict.multiplicity = true;
          run.Emit(lint::Severity::kWarning, kVerifyMultiplicity,
                   "rewrite preserves the result set but changes row "
                   "multiplicities on database '" +
                       dbinst.name + "' (lhs " +
                       std::to_string(lhs_rows.size()) + " rows, rhs " +
                       std::to_string(rhs_rows.size()) + ")" +
                       InstanceBlurb(ri, rewritten));
        }
        continue;
      }
      // Content divergence: a true counterexample. Shrink it, then report.
      VerifyEnv::Snapshot snap = env.SnapshotOf(dbi);
      if (opts.minimize) {
        (void)MinimizeCounterexample(env, ri.plan, rewritten, opts, &snap,
                                     &lhs_rows, &rhs_rows);
      }
      std::string db_desc = VerifyEnv::Describe(snap, 8);
      if (db_desc.empty()) db_desc = "(all tables empty)";
      std::string detail = InstanceBlurb(ri, rewritten) + "\n  database:  " +
                           Indent(db_desc) + "\n  lhs rows:  " +
                           RowsToString(lhs_rows, 8) + "\n  rhs rows:  " +
                           RowsToString(rhs_rows, 8);
      if (SnapshotHasNull(snap)) {
        // Checked *after* minimization: if the divergence survived with the
        // NULL rows stripped it is a genuine S001 above; surviving NULLs
        // mean they are load-bearing. Keep scanning — a later NULL-free
        // witness still upgrades this to an error.
        if (null_only_message.empty()) {
          null_only_message = "results diverge on NULL-bearing database '" +
                              dbinst.name + "' (no NULL-free counterexample "
                              "found; the rule libraries document two-valued "
                              "NULL semantics)" + detail;
        }
        continue;
      }
      run.Emit(lint::Severity::kError, kVerifyDivergence,
               "results diverge on database '" + dbinst.name + "'" + detail);
      break;
    }
    if (instance_checked) checked_instances++;
  }

  if (!run.emitted_error && !null_only_message.empty()) {
    run.verdict.null_only = true;
    run.Emit(lint::Severity::kWarning, kVerifyNullOnly,
             std::move(null_only_message));
  }
  if (!run.emitted_error) {
    if (run.verdict.fired > 0 && checked_instances == 0 &&
        rhs_type_failures > 0 && rhs_type_failures >= run.verdict.fired) {
      run.Emit(lint::Severity::kWarning, kVerifyIllTyped,
               "rewritten plan is ill-typed on every generated instance: " +
                   last_type_failure.ToString() +
                   (last_type_failure_instance != nullptr
                        ? InstanceBlurb(*last_type_failure_instance,
                                        last_type_failure_term)
                        : std::string()));
    } else if (opts.report_coverage_notes && run.verdict.fired == 0) {
      run.Emit(lint::Severity::kNote, kVerifyNoCoverage,
               "no generated instance fired this rule (" +
                   std::to_string(run.verdict.instances) +
                   " candidates); soundness not checked");
    } else if (run.verdict.fired > 0 && run.verdict.checked == 0 &&
               infra_skips > 0) {
      run.verdict.inconclusive = true;
      run.Emit(lint::Severity::kNote, kVerifyInconclusive,
               "verification inconclusive: every comparison was skipped "
               "(fault injection or execution budget)");
    }
  }
  if (out != nullptr) *out = run.verdict;
  return Status::OK();
}

}  // namespace

std::string VerifySummary::ToString() const {
  std::ostringstream out;
  out << rules << " rule(s), " << rules_fired << " fired, " << rules_flagged
      << " flagged";
  return out.str();
}

Status VerifyRule(const rewrite::Rule& rule,
                  const rewrite::BuiltinRegistry& builtins,
                  const VerifyOptions& opts, lint::LintReport* report,
                  RuleVerdict* verdict) {
  EDS_ASSIGN_OR_RETURN(std::unique_ptr<VerifyEnv> env,
                       VerifyEnv::Create(opts.seed, opts.random_databases));
  return VerifyRuleWithEnv(rule, builtins, opts, *env, report, verdict);
}

Status VerifyRules(const std::vector<rewrite::Rule>& rules,
                   const rewrite::BuiltinRegistry& builtins,
                   const VerifyOptions& opts, lint::LintReport* report,
                   VerifySummary* summary) {
  EDS_ASSIGN_OR_RETURN(std::unique_ptr<VerifyEnv> env,
                       VerifyEnv::Create(opts.seed, opts.random_databases));
  VerifySummary local;
  for (const rewrite::Rule& rule : rules) {
    RuleVerdict v;
    EDS_RETURN_IF_ERROR(
        VerifyRuleWithEnv(rule, builtins, opts, *env, report, &v));
    local.rules++;
    if (v.fired > 0) local.rules_fired++;
    if (v.divergence || v.multiplicity || v.null_only) local.rules_flagged++;
    local.verdicts.push_back(std::move(v));
  }
  if (summary != nullptr) *summary = std::move(local);
  return Status::OK();
}

Status VerifyProgram(const rewrite::RewriteProgram& program,
                     const rewrite::BuiltinRegistry& builtins,
                     const VerifyOptions& opts, lint::LintReport* report,
                     VerifySummary* summary) {
  std::vector<rewrite::Rule> rules;
  std::unordered_set<std::string> seen;
  for (const rewrite::RuleBlock& block : program.blocks) {
    for (const rewrite::Rule& rule : block.rules) {
      if (seen.insert(rule.name).second) rules.push_back(rule);
    }
  }
  return VerifyRules(rules, builtins, opts, report, summary);
}

lint::LintReport VerifyLibrary(std::string_view text,
                               const rewrite::BuiltinRegistry& builtins,
                               const VerifyOptions& opts,
                               VerifySummary* summary) {
  lint::LintReport report;
  auto unit = ruledsl::ParseRuleSource(text);
  if (!unit.ok()) {
    lint::Diagnostic d;
    d.severity = lint::Severity::kError;
    d.id = kVerifyInvalidRule;
    d.message = "cannot verify: " + unit.status().ToString();
    report.Add(std::move(d));
    return report;
  }
  Status s = VerifyRules(unit->rules, builtins, opts, &report, summary);
  if (!s.ok()) {
    lint::Diagnostic d;
    d.severity = lint::Severity::kNote;
    d.id = kVerifyInconclusive;
    d.message = "verification inconclusive: " + s.ToString();
    report.Add(std::move(d));
  }
  return report;
}

}  // namespace eds::verify
