#ifndef EDS_VERIFY_VERIFY_H_
#define EDS_VERIFY_VERIFY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "lint/diagnostic.h"
#include "rewrite/builtins.h"
#include "rewrite/engine.h"
#include "rewrite/rule.h"

namespace eds::verify {

// Stable soundness ids, the semantic sibling of lint's EDS-Lxxx set.
// docs/rule_verify.md documents each id with a triggering example.
inline constexpr const char* kVerifyInvalidRule = "EDS-S000";   // error
inline constexpr const char* kVerifyDivergence = "EDS-S001";    // error
inline constexpr const char* kVerifyBrokenOutput = "EDS-S002";  // error
inline constexpr const char* kVerifyArityChange = "EDS-S003";   // error
inline constexpr const char* kVerifyMultiplicity = "EDS-S004";  // warning
inline constexpr const char* kVerifyIllTyped = "EDS-S005";      // warning
inline constexpr const char* kVerifyNullOnly = "EDS-S006";      // warning
inline constexpr const char* kVerifyNoCoverage = "EDS-S010";    // note
inline constexpr const char* kVerifyInconclusive = "EDS-S011";  // note

// Bounded-equivalence checking knobs. The defaults finish the full built-in
// rule set in a few seconds while still covering duplicate/NULL/empty
// corners; verification is *falsification*, never proof — see
// docs/rule_verify.md for the caveats.
struct VerifyOptions {
  uint64_t seed = 42;              // instance-generation seed
  size_t random_databases = 3;     // random instances next to the corners
  size_t max_instances_per_rule = 24;
  size_t max_checked_per_rule = 6;  // fired instances compared per rule
  uint64_t exec_deadline_ms = 250;  // per-side execution budget
  uint64_t exec_max_rows = 50000;
  size_t max_fix_iterations = 64;
  bool minimize = true;             // shrink counterexample databases
  size_t minimize_budget = 160;     // executions the minimizer may spend
  bool report_coverage_notes = true;  // EDS-S010/EDS-S011 notes
};

// What the verifier established about one rule.
struct RuleVerdict {
  std::string rule;
  size_t instances = 0;  // generated candidate instances
  size_t fired = 0;      // instances the rule actually rewrote
  size_t checked = 0;    // (instance, database) comparisons executed
  bool divergence = false;    // an error-severity finding (S001/S002/S003)
  bool multiplicity = false;  // bag-semantics warning (S004)
  bool null_only = false;     // diverges only with NULLs present (S006)
  bool inconclusive = false;  // some checks were skipped (budget / fault)
};

struct VerifySummary {
  std::vector<RuleVerdict> verdicts;
  size_t rules = 0;
  size_t rules_fired = 0;
  size_t rules_flagged = 0;  // divergence or multiplicity

  // "12 rule(s), 9 fired, 1 flagged".
  std::string ToString() const;
};

// Checks one rule for bounded semantic equivalence: instantiates its LHS
// over the verifier's synthetic databases, rewrites each instance with a
// single-rule engine, executes both sides, and reports divergence into
// `report` (reusing lint::Diagnostic; `rule.loc` locates the finding).
// A non-OK return is an infrastructure failure (e.g. the environment could
// not be built), never a statement about the rule — injected faults and
// budget trips degrade to an EDS-S011 note instead.
Status VerifyRule(const rewrite::Rule& rule,
                  const rewrite::BuiltinRegistry& builtins,
                  const VerifyOptions& opts, lint::LintReport* report,
                  RuleVerdict* verdict = nullptr);

// Verifies each rule in order against a shared environment.
Status VerifyRules(const std::vector<rewrite::Rule>& rules,
                   const rewrite::BuiltinRegistry& builtins,
                   const VerifyOptions& opts, lint::LintReport* report,
                   VerifySummary* summary = nullptr);

// Verifies every distinct rule of a compiled program (a rule listed in
// several blocks is checked once).
Status VerifyProgram(const rewrite::RewriteProgram& program,
                     const rewrite::BuiltinRegistry& builtins,
                     const VerifyOptions& opts, lint::LintReport* report,
                     VerifySummary* summary = nullptr);

// Parses a rule-DSL source unit and verifies its rules. Parse failures
// report EDS-S000 (the verifier cannot say anything about rules it cannot
// read); otherwise the report carries the per-rule findings.
lint::LintReport VerifyLibrary(std::string_view text,
                               const rewrite::BuiltinRegistry& builtins,
                               const VerifyOptions& opts = {},
                               VerifySummary* summary = nullptr);

}  // namespace eds::verify

#endif  // EDS_VERIFY_VERIFY_H_
