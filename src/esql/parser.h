#ifndef EDS_ESQL_PARSER_H_
#define EDS_ESQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "esql/ast.h"

namespace eds::esql {

// Parses a script of ';'-separated ESQL statements. Supported subset (the
// constructs the paper's figures use, §2):
//
//   [CREATE] TYPE <name> ENUMERATION OF ('a', ...)
//   [CREATE] TYPE <name> [SUBTYPE OF <super>] [OBJECT] TUPLE (f : T, ...)
//            [FUNCTION <name>(<p> <T>, ...) [RETURNS T]]...
//   [CREATE] TYPE <name> SET OF T | LIST OF T | BAG OF T | ARRAY OF T | T
//   [CREATE] TABLE <name> (col : T, ...)        -- 'col T' also accepted
//   CREATE VIEW <name> [(cols)] AS [(] SELECT ... [UNION SELECT ...] [)]
//   INSERT INTO <name> VALUES (expr, ...) [, (expr, ...)]...
//   SELECT items FROM t [alias], ... [WHERE pred] [GROUP BY exprs]
//
// Expressions: literals, [qualifier.]column, function calls (including
// attribute-name-as-function and MakeSet), arithmetic, comparisons,
// AND/OR/NOT, and the set quantifiers ALL(pred) / EXIST(pred).
Result<std::vector<Statement>> ParseScript(std::string_view text);

// Parses exactly one statement (trailing ';' optional).
Result<Statement> ParseStatement(std::string_view text);

}  // namespace eds::esql

#endif  // EDS_ESQL_PARSER_H_
