#ifndef EDS_ESQL_LEXER_H_
#define EDS_ESQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace eds::esql {

enum class TokenKind {
  kEnd,
  kIdent,     // identifiers and keywords (keywords resolved by the parser)
  kInt,
  kReal,
  kString,    // 'Quinn' ('' escapes a quote)
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kDot,
  kColon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,
  kNe,        // <>
  kLt,
  kLe,
  kGt,
  kGe,
};

struct EsqlToken {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0;
  size_t pos = 0;
};

// Tokenizes ESQL text. '--' starts a line comment. Numbers with underscores
// or embedded spaces are NOT supported (Fig. 4's "10 0OO" is OCR noise);
// write 10000.
Result<std::vector<EsqlToken>> LexEsql(std::string_view text);

}  // namespace eds::esql

#endif  // EDS_ESQL_LEXER_H_
