#include "esql/parser.h"

#include <algorithm>

#include "common/strings.h"
#include "esql/lexer.h"

namespace eds::esql {

namespace {

class Parser {
 public:
  Parser(const std::vector<EsqlToken>* tokens, std::string_view text)
      : tokens_(tokens), text_(text) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (Peek().kind == TokenKind::kSemicolon) {
        Advance();
        continue;
      }
      size_t start = Peek().pos;
      EDS_ASSIGN_OR_RETURN(Statement s, ParseOneStatement());
      size_t end = std::min(Peek().pos, text_.size());
      s.source = std::string(Trim(text_.substr(start, end - start)));
      out.push_back(std::move(s));
    }
    return out;
  }

  Result<Statement> ParseOneStatement() {
    if (IsKeyword("CREATE")) Advance();
    if (IsKeyword("TYPE")) return ParseCreateType();
    if (IsKeyword("TABLE")) return ParseCreateTable();
    if (IsKeyword("VIEW")) return ParseCreateView();
    if (IsKeyword("INSERT")) return ParseInsert();
    if (IsKeyword("SELECT")) {
      Statement s;
      s.kind = StatementKind::kSelect;
      EDS_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      s.select = std::make_shared<SelectStmt>(std::move(sel));
      EndStatement();
      return s;
    }
    return Error("expected TYPE, TABLE, VIEW, INSERT or SELECT");
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

 private:
  const EsqlToken& Peek(size_t ahead = 0) const {
    static const EsqlToken kEnd;
    return pos_ + ahead < tokens_->size() ? (*tokens_)[pos_ + ahead] : kEnd;
  }
  void Advance() { ++pos_; }

  bool IsKeyword(const char* kw, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek(ahead).text, kw);
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("at offset " + std::to_string(Peek().pos) +
                              ": " + message);
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Error(std::string("expected ") + kw);
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  // Consumes an optional trailing ';'.
  void EndStatement() {
    if (Peek().kind == TokenKind::kSemicolon) Advance();
  }

  // ---- DDL ----

  Result<Statement> ParseCreateType() {
    Advance();  // TYPE
    Statement s;
    s.kind = StatementKind::kCreateType;
    EDS_ASSIGN_OR_RETURN(s.name, ExpectIdent("type name"));
    EDS_ASSIGN_OR_RETURN(s.type, ParseTypeExpr());
    while (IsKeyword("FUNCTION")) {
      Advance();
      FunctionDecl fn;
      EDS_ASSIGN_OR_RETURN(fn.name, ExpectIdent("function name"));
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          TypedName p;
          EDS_ASSIGN_OR_RETURN(p.name, ExpectIdent("parameter name"));
          EDS_ASSIGN_OR_RETURN(p.type, ParseTypeExpr());
          fn.params.push_back(std::move(p));
          if (Peek().kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          break;
        }
      }
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      if (IsKeyword("RETURNS")) {
        Advance();
        EDS_ASSIGN_OR_RETURN(fn.result, ParseTypeExpr());
      }
      s.functions.push_back(std::move(fn));
    }
    EndStatement();
    return s;
  }

  Result<TypeExprPtr> ParseTypeExpr() {
    auto t = std::make_shared<TypeExpr>();
    if (IsKeyword("ENUMERATION")) {
      Advance();
      EDS_RETURN_IF_ERROR(ExpectKeyword("OF"));
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      t->kind = TypeExprKind::kEnum;
      while (true) {
        if (Peek().kind != TokenKind::kString) {
          return Error("expected a string literal in ENUMERATION");
        }
        t->enum_values.push_back(Peek().text);
        Advance();
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return t;
    }
    std::string supertype;
    if (IsKeyword("SUBTYPE")) {
      Advance();
      EDS_RETURN_IF_ERROR(ExpectKeyword("OF"));
      EDS_ASSIGN_OR_RETURN(supertype, ExpectIdent("supertype name"));
    }
    bool is_object = false;
    if (IsKeyword("OBJECT")) {
      Advance();
      is_object = true;
    }
    if (IsKeyword("TUPLE")) {
      Advance();
      t->kind = is_object ? TypeExprKind::kObject : TypeExprKind::kTuple;
      t->supertype = std::move(supertype);
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      while (true) {
        TypedName f;
        EDS_ASSIGN_OR_RETURN(f.name, ExpectIdent("attribute name"));
        if (Peek().kind == TokenKind::kColon) Advance();
        EDS_ASSIGN_OR_RETURN(f.type, ParseTypeExpr());
        t->fields.push_back(std::move(f));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return t;
    }
    if (!supertype.empty() || is_object) {
      return Error("SUBTYPE OF / OBJECT must be followed by TUPLE (...)");
    }
    if (IsKeyword("SET") || IsKeyword("LIST") || IsKeyword("BAG") ||
        IsKeyword("ARRAY")) {
      std::string kw = Peek().text;
      // 'SET OF T' is a collection type; a bare 'SET' identifier would be a
      // named reference — require OF.
      if (IsKeyword("OF", 1)) {
        Advance();  // kind
        Advance();  // OF
        t->kind = TypeExprKind::kCollection;
        t->collection_kind = EqualsIgnoreCase(kw, "SET")  ? types::TypeKind::kSet
                             : EqualsIgnoreCase(kw, "LIST")
                                 ? types::TypeKind::kList
                             : EqualsIgnoreCase(kw, "BAG")
                                 ? types::TypeKind::kBag
                                 : types::TypeKind::kArray;
        EDS_ASSIGN_OR_RETURN(t->element, ParseTypeExpr());
        return t;
      }
    }
    t->kind = TypeExprKind::kNamed;
    EDS_ASSIGN_OR_RETURN(t->name, ExpectIdent("type name"));
    return t;
  }

  Result<Statement> ParseCreateTable() {
    Advance();  // TABLE
    Statement s;
    s.kind = StatementKind::kCreateTable;
    EDS_ASSIGN_OR_RETURN(s.name, ExpectIdent("table name"));
    EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (true) {
      TypedName col;
      EDS_ASSIGN_OR_RETURN(col.name, ExpectIdent("column name"));
      if (Peek().kind == TokenKind::kColon) Advance();
      EDS_ASSIGN_OR_RETURN(col.type, ParseTypeExpr());
      s.columns.push_back(std::move(col));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    EndStatement();
    return s;
  }

  Result<Statement> ParseCreateView() {
    Advance();  // VIEW
    Statement s;
    s.kind = StatementKind::kCreateView;
    EDS_ASSIGN_OR_RETURN(s.name, ExpectIdent("view name"));
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      while (true) {
        EDS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        s.view_columns.push_back(std::move(col));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    EDS_RETURN_IF_ERROR(ExpectKeyword("AS"));
    bool parenthesized = false;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      parenthesized = true;
    }
    EDS_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
    s.select = std::make_shared<SelectStmt>(std::move(sel));
    if (parenthesized) {
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    }
    EndStatement();
    return s;
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    EDS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    Statement s;
    s.kind = StatementKind::kInsert;
    EDS_ASSIGN_OR_RETURN(s.name, ExpectIdent("table name"));
    EDS_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      std::vector<ExprPtr> row;
      while (true) {
        EDS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      s.insert_rows.push_back(std::move(row));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    EndStatement();
    return s;
  }

  // ---- queries ----

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    while (true) {
      EDS_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
      stmt.cores.push_back(std::move(core));
      if (IsKeyword("UNION")) {
        Advance();
        continue;
      }
      break;
    }
    return stmt;
  }

  Result<SelectCore> ParseSelectCore() {
    EDS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectCore core;
    if (IsKeyword("DISTINCT")) {
      Advance();
      core.distinct = true;
    }
    while (true) {
      SelectItem item;
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        item.expr = Expr::Star();
      } else {
        EDS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (IsKeyword("AS")) {
          Advance();
          EDS_ASSIGN_OR_RETURN(item.alias, ExpectIdent("alias"));
        }
      }
      core.items.push_back(std::move(item));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    EDS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      TableRef ref;
      EDS_ASSIGN_OR_RETURN(ref.name, ExpectIdent("relation name"));
      // Optional alias: a following identifier that is not a clause
      // keyword.
      if (Peek().kind == TokenKind::kIdent && !IsKeyword("WHERE") &&
          !IsKeyword("GROUP") && !IsKeyword("UNION") && !IsKeyword("AS")) {
        ref.alias = Peek().text;
        Advance();
      } else if (IsKeyword("AS")) {
        Advance();
        EDS_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
      }
      core.from.push_back(std::move(ref));
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (IsKeyword("WHERE")) {
      Advance();
      EDS_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    if (IsKeyword("GROUP")) {
      Advance();
      EDS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        EDS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        core.group_by.push_back(std::move(e));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    return core;
  }

  // ---- expressions ----

  Result<ExprPtr> ParseExpr() {
    // Every nesting level (parenthesized group, call argument, subquery)
    // re-enters here, each costing several stack frames through the
    // precedence chain — frames the sanitizer builds inflate further. 256
    // is far deeper than any legitimate query; beyond it adversarial input
    // gets a ParseError instead of a stack overflow.
    constexpr int kMaxDepth = 256;
    if (depth_ >= kMaxDepth) {
      return Error("expression nesting exceeds " + std::to_string(kMaxDepth) +
                   " levels");
    }
    ++depth_;
    Result<ExprPtr> out = ParseOr();
    --depth_;
    return out;
  }

  Result<ExprPtr> ParseOr() {
    EDS_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (IsKeyword("OR")) {
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Call("OR", {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    EDS_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (IsKeyword("AND")) {
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = Expr::Call("AND", {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (IsKeyword("NOT")) {
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Call("NOT", {std::move(inner)});
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    EDS_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    const char* op = nullptr;
    switch (Peek().kind) {
      case TokenKind::kEq: op = "EQ"; break;
      case TokenKind::kNe: op = "NE"; break;
      case TokenKind::kLt: op = "LT"; break;
      case TokenKind::kLe: op = "LE"; break;
      case TokenKind::kGt: op = "GT"; break;
      case TokenKind::kGe: op = "GE"; break;
      default: return left;
    }
    Advance();
    EDS_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return Expr::Call(op, {std::move(left), std::move(right)});
  }

  Result<ExprPtr> ParseAdditive() {
    EDS_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      const char* op = Peek().kind == TokenKind::kPlus ? "ADD" : "SUB";
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Expr::Call(op, {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    EDS_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash) {
      const char* op = Peek().kind == TokenKind::kStar ? "MUL" : "DIV";
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Call(op, {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      EDS_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      if (inner->kind == ExprKind::kLiteral &&
          inner->literal.kind() == value::ValueKind::kInt) {
        return Expr::Literal(value::Value::Int(-inner->literal.AsInt()));
      }
      if (inner->kind == ExprKind::kLiteral &&
          inner->literal.kind() == value::ValueKind::kReal) {
        return Expr::Literal(value::Value::Real(-inner->literal.AsReal()));
      }
      return Expr::Call("NEG", {std::move(inner)});
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const EsqlToken& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        auto e = Expr::Literal(value::Value::Int(t.int_value));
        Advance();
        return e;
      }
      case TokenKind::kReal: {
        auto e = Expr::Literal(value::Value::Real(t.real_value));
        Advance();
        return e;
      }
      case TokenKind::kString: {
        auto e = Expr::Literal(value::Value::String(t.text));
        Advance();
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        EDS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        std::string name = t.text;
        if (EqualsIgnoreCase(name, "TRUE")) {
          Advance();
          return Expr::Literal(value::Value::Bool(true));
        }
        if (EqualsIgnoreCase(name, "FALSE")) {
          Advance();
          return Expr::Literal(value::Value::Bool(false));
        }
        if (EqualsIgnoreCase(name, "ALL") || EqualsIgnoreCase(name, "EXIST") ||
            EqualsIgnoreCase(name, "EXISTS")) {
          bool universal = EqualsIgnoreCase(name, "ALL");
          Advance();
          EDS_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
          EDS_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr());
          EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::Quantifier(universal, std::move(body));
        }
        Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              EDS_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
              args.push_back(std::move(a));
              if (Peek().kind == TokenKind::kComma) {
                Advance();
                continue;
              }
              break;
            }
          }
          EDS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          return Expr::Call(std::move(name), std::move(args));
        }
        if (Peek().kind == TokenKind::kDot) {
          Advance();
          EDS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
          return Expr::Column(std::move(name), std::move(col));
        }
        return Expr::Column("", std::move(name));
      }
      default:
        return Error("expected an expression");
    }
  }

  const std::vector<EsqlToken>* tokens_;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;  // expression nesting, bounded in ParseExpr
};

}  // namespace

Result<std::vector<Statement>> ParseScript(std::string_view text) {
  EDS_ASSIGN_OR_RETURN(std::vector<EsqlToken> tokens, LexEsql(text));
  Parser parser(&tokens, text);
  return parser.ParseScript();
}

Result<Statement> ParseStatement(std::string_view text) {
  EDS_ASSIGN_OR_RETURN(std::vector<EsqlToken> tokens, LexEsql(text));
  Parser parser(&tokens, text);
  EDS_ASSIGN_OR_RETURN(std::vector<Statement> stmts, parser.ParseScript());
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

}  // namespace eds::esql
