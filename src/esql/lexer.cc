#include "esql/lexer.h"

#include <cctype>

namespace eds::esql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<EsqlToken>> LexEsql(std::string_view text) {
  std::vector<EsqlToken> out;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&out](TokenKind kind, size_t pos) -> EsqlToken& {
    EsqlToken t;
    t.kind = kind;
    t.pos = pos;
    out.push_back(std::move(t));
    return out.back();
  };
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // '--' line comment.
    if (c == '-' && i + 1 < n && text[i + 1] == '-') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      EsqlToken& t = push(TokenKind::kIdent, start);
      t.text = std::string(text.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      bool real = false;
      if (j < n && text[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        real = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      std::string lexeme(text.substr(i, j - i));
      if (real) {
        push(TokenKind::kReal, start).real_value = std::stod(lexeme);
      } else {
        push(TokenKind::kInt, start).int_value = std::stoll(lexeme);
      }
      i = j;
      continue;
    }
    switch (c) {
      case '\'': {
        std::string s;
        size_t j = i + 1;
        bool closed = false;
        while (j < n) {
          if (text[j] == '\'') {
            if (j + 1 < n && text[j + 1] == '\'') {
              s += '\'';
              j += 2;
            } else {
              closed = true;
              ++j;
              break;
            }
          } else {
            s += text[j++];
          }
        }
        if (!closed) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        push(TokenKind::kString, start).text = std::move(s);
        i = j;
        break;
      }
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case ';': push(TokenKind::kSemicolon, start); ++i; break;
      case '.': push(TokenKind::kDot, start); ++i; break;
      case ':': push(TokenKind::kColon, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '=': push(TokenKind::kEq, start); ++i; break;
      case '<':
        if (i + 1 < n && text[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace eds::esql
