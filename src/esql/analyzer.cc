#include "esql/analyzer.h"

namespace eds::esql {

using types::Type;
using types::TypeRef;

Result<types::TypeRef> Analyzer::ResolveTypeExpr(const TypeExpr& t,
                                                 const std::string& name_hint) {
  switch (t.kind) {
    case TypeExprKind::kNamed:
      return catalog_->types().Find(t.name);
    case TypeExprKind::kEnum: {
      // Anonymous enums get the enclosing declaration's name.
      return Type::MakeEnumeration(name_hint, t.enum_values);
    }
    case TypeExprKind::kTuple: {
      std::vector<types::Field> fields;
      for (const TypedName& f : t.fields) {
        EDS_ASSIGN_OR_RETURN(TypeRef ft, ResolveTypeExpr(*f.type));
        fields.push_back(types::Field{f.name, std::move(ft)});
      }
      return Type::MakeTuple(std::move(fields));
    }
    case TypeExprKind::kCollection: {
      EDS_ASSIGN_OR_RETURN(TypeRef elem, ResolveTypeExpr(*t.element));
      return Type::MakeCollection(t.collection_kind, std::move(elem));
    }
    case TypeExprKind::kObject: {
      TypeRef supertype;
      if (!t.supertype.empty()) {
        EDS_ASSIGN_OR_RETURN(supertype, catalog_->types().Find(t.supertype));
      }
      std::vector<types::Field> fields;
      for (const TypedName& f : t.fields) {
        EDS_ASSIGN_OR_RETURN(TypeRef ft, ResolveTypeExpr(*f.type));
        fields.push_back(types::Field{f.name, std::move(ft)});
      }
      return Type::MakeObject(name_hint, std::move(fields),
                              std::move(supertype));
    }
  }
  return Status::Internal("unreachable type expression kind");
}

Status Analyzer::ApplyCreateType(const Statement& stmt) {
  switch (stmt.type->kind) {
    case TypeExprKind::kEnum: {
      EDS_RETURN_IF_ERROR(
          catalog_->types()
              .RegisterEnumeration(stmt.name, stmt.type->enum_values)
              .status());
      break;
    }
    case TypeExprKind::kObject: {
      TypeRef supertype;
      if (!stmt.type->supertype.empty()) {
        EDS_ASSIGN_OR_RETURN(supertype,
                             catalog_->types().Find(stmt.type->supertype));
      }
      std::vector<types::Field> fields;
      for (const TypedName& f : stmt.type->fields) {
        EDS_ASSIGN_OR_RETURN(TypeRef ft, ResolveTypeExpr(*f.type));
        fields.push_back(types::Field{f.name, std::move(ft)});
      }
      EDS_RETURN_IF_ERROR(catalog_->types()
                              .RegisterObject(stmt.name, std::move(fields),
                                              supertype)
                              .status());
      break;
    }
    case TypeExprKind::kTuple: {
      std::vector<types::Field> fields;
      for (const TypedName& f : stmt.type->fields) {
        EDS_ASSIGN_OR_RETURN(TypeRef ft, ResolveTypeExpr(*f.type));
        fields.push_back(types::Field{f.name, std::move(ft)});
      }
      EDS_RETURN_IF_ERROR(
          catalog_->types().RegisterTuple(stmt.name, std::move(fields))
              .status());
      break;
    }
    default: {
      EDS_ASSIGN_OR_RETURN(TypeRef resolved,
                           ResolveTypeExpr(*stmt.type, stmt.name));
      EDS_RETURN_IF_ERROR(
          catalog_->types().RegisterAlias(stmt.name, resolved).status());
      break;
    }
  }
  // FUNCTION declarations attach signatures to the ADT library.
  for (const FunctionDecl& fn : stmt.functions) {
    catalog::FunctionSig sig;
    sig.name = fn.name;
    for (const TypedName& p : fn.params) {
      EDS_ASSIGN_OR_RETURN(TypeRef pt, ResolveTypeExpr(*p.type));
      sig.params.push_back(std::move(pt));
    }
    if (fn.result != nullptr) {
      EDS_ASSIGN_OR_RETURN(sig.result, ResolveTypeExpr(*fn.result));
    } else if (!sig.params.empty()) {
      // A mutator like IncreaseSalary(This Actor, Val NUMERIC) returns its
      // receiver by convention.
      sig.result = sig.params[0];
    } else {
      sig.result = catalog_->types().any_type();
    }
    EDS_RETURN_IF_ERROR(catalog_->DeclareFunction(std::move(sig)));
  }
  return Status::OK();
}

Status Analyzer::ApplyCreateTable(const Statement& stmt) {
  catalog::TableDef def;
  def.name = stmt.name;
  for (const TypedName& col : stmt.columns) {
    EDS_ASSIGN_OR_RETURN(TypeRef ct, ResolveTypeExpr(*col.type));
    def.columns.push_back(types::Field{col.name, std::move(ct)});
  }
  return catalog_->CreateTable(std::move(def));
}

}  // namespace eds::esql
