#include "esql/ast.h"

#include <sstream>

namespace eds::esql {

ExprPtr Expr::Literal(value::Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string qualifier, std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Quantifier(bool universal, ExprPtr body) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kQuantifier;
  e->universal = universal;
  e->args.push_back(std::move(body));
  return e;
}

ExprPtr Expr::Star() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case ExprKind::kLiteral:
      os << literal;
      break;
    case ExprKind::kColumnRef:
      if (!qualifier.empty()) os << qualifier << '.';
      os << name;
      break;
    case ExprKind::kCall: {
      os << name << '(';
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) os << ", ";
        os << args[i]->ToString();
      }
      os << ')';
      break;
    }
    case ExprKind::kQuantifier:
      os << (universal ? "ALL" : "EXIST") << '('
         << (args.empty() ? "" : args[0]->ToString()) << ')';
      break;
    case ExprKind::kStar:
      os << '*';
      break;
  }
  return os.str();
}

}  // namespace eds::esql
