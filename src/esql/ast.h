#ifndef EDS_ESQL_AST_H_
#define EDS_ESQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "types/type.h"
#include "value/value.h"

namespace eds::esql {

// ---- expressions ----

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kLiteral,     // 10000, 'Quinn', TRUE
  kColumnRef,   // Categories, FILM.Numf, B1.Refactor2
  kCall,        // MEMBER(x, s), Salary(Refactor), MakeSet(e), x + y (name
                // is the canonical functor: ADD, EQ, AND, ...)
  kQuantifier,  // ALL(pred) / EXIST(pred)
  kStar,        // SELECT *
};

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  value::Value literal;
  std::string qualifier;  // column ref: optional table/alias qualifier
  std::string name;       // column name or function name
  std::vector<ExprPtr> args;
  bool universal = false;  // quantifier: true = ALL, false = EXIST

  // Debug form, e.g. "MEMBER('Adventure', Categories)".
  std::string ToString() const;

  static ExprPtr Literal(value::Value v);
  static ExprPtr Column(std::string qualifier, std::string name);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Quantifier(bool universal, ExprPtr body);
  static ExprPtr Star();
};

// ---- type expressions (CREATE TYPE / column types) ----

struct TypeExpr;
using TypeExprPtr = std::shared_ptr<TypeExpr>;

enum class TypeExprKind {
  kNamed,       // NUMERIC, Actor, Text
  kEnum,        // ENUMERATION OF ('Comedy', ...)
  kTuple,       // TUPLE (ABS : REAL, ORD : REAL)
  kCollection,  // SET OF T, LIST OF T, BAG OF T, ARRAY OF T
  kObject,      // [SUBTYPE OF S] OBJECT TUPLE (...)
};

struct TypedName {
  std::string name;
  TypeExprPtr type;
};

struct TypeExpr {
  TypeExprKind kind = TypeExprKind::kNamed;
  std::string name;                      // named reference
  std::vector<std::string> enum_values;  // enum
  std::vector<TypedName> fields;         // tuple / object
  types::TypeKind collection_kind = types::TypeKind::kSet;
  TypeExprPtr element;                   // collection
  std::string supertype;                 // object, may be empty
};

// FUNCTION IncreaseSalary(This Actor, Val NUMERIC) [RETURNS T]
struct FunctionDecl {
  std::string name;
  std::vector<TypedName> params;
  TypeExprPtr result;  // null: defaults to the first parameter's type
};

// ---- queries ----

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // may be empty
};

struct TableRef {
  std::string name;
  std::string alias;  // may be empty; Fig. 5 uses BETTER_THAN B1, B2
};

struct SelectCore {
  bool distinct = false;  // SELECT DISTINCT -> a DEDUP over the core
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
};

// A query expression: one or more cores combined by UNION (recursive views
// use the UNION form of Fig. 5).
struct SelectStmt {
  std::vector<SelectCore> cores;
};

// ---- statements ----

enum class StatementKind {
  kCreateType,
  kCreateTable,
  kCreateView,
  kInsert,
  kSelect,
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;

  // The statement's original text (populated by ParseScript; used for
  // schema dumps so views round-trip verbatim).
  std::string source;

  // CREATE TYPE
  std::string name;  // also the table/view name for DDL, target for INSERT
  TypeExprPtr type;
  std::vector<FunctionDecl> functions;

  // CREATE TABLE
  std::vector<TypedName> columns;

  // CREATE VIEW
  std::vector<std::string> view_columns;  // optional explicit column names
  std::shared_ptr<SelectStmt> select;     // view body / top-level query

  // INSERT INTO name VALUES (...), (...)
  std::vector<std::vector<ExprPtr>> insert_rows;
};

}  // namespace eds::esql

#endif  // EDS_ESQL_AST_H_
