#include "esql/translator.h"

#include "common/strings.h"
#include "lera/lera.h"

namespace eds::esql {

using term::Term;
using term::TermList;
using term::TermRef;
using types::TypeKind;
using types::TypeRef;

namespace {

bool IsCanonicalOperator(const std::string& upper) {
  return upper == "EQ" || upper == "NE" || upper == "LT" || upper == "LE" ||
         upper == "GT" || upper == "GE" || upper == "AND" || upper == "OR" ||
         upper == "NOT" || upper == "ADD" || upper == "SUB" ||
         upper == "MUL" || upper == "DIV" || upper == "NEG";
}

bool IsCollectCall(const ExprPtr& e) {
  if (e->kind != ExprKind::kCall || e->args.size() != 1) return false;
  return EqualsIgnoreCase(e->name, "MAKESET") ||
         EqualsIgnoreCase(e->name, "MAKEBAG") ||
         EqualsIgnoreCase(e->name, "MAKELIST");
}

}  // namespace

std::string DeriveColumnName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColumnRef) return e.name;
  if (e.kind == ExprKind::kCall) {
    if (IsCollectCall(item.expr) &&
        e.args[0]->kind == ExprKind::kColumnRef) {
      return e.args[0]->name + "S";  // MakeSet(Refactor) -> REFACTORS
    }
    return e.name;
  }
  return "C" + std::to_string(position + 1);
}

Result<std::vector<Translator::ScopeEntry>> Translator::BuildScope(
    const SelectCore& core, const std::string& recursive_view,
    const lera::Schema* recursive_schema) {
  std::vector<ScopeEntry> scope;
  for (const TableRef& ref : core.from) {
    ScopeEntry entry;
    entry.binding = ref.alias.empty() ? ref.name : ref.alias;
    if (!recursive_view.empty() &&
        EqualsIgnoreCase(ref.name, recursive_view)) {
      // In-definition self-reference of a recursive view: stays symbolic so
      // the FIX operator can bind it.
      entry.input = lera::Relation(ref.name);
      entry.schema = *recursive_schema;
    } else if (catalog_->HasTable(ref.name)) {
      EDS_ASSIGN_OR_RETURN(const catalog::TableDef* table,
                           catalog_->FindTable(ref.name));
      entry.input = lera::Relation(ref.name);
      entry.schema = table->columns;
    } else if (catalog_->HasView(ref.name)) {
      // Query modification: the view reference is replaced by its stored
      // LERA definition [Stonebraker76]; merging rules flatten the result.
      EDS_ASSIGN_OR_RETURN(const catalog::ViewDef* view,
                           catalog_->FindView(ref.name));
      entry.input = view->definition;
      entry.schema = view->columns;
    } else {
      return Status::NotFound("unknown relation '" + ref.name + "'");
    }
    scope.push_back(std::move(entry));
  }
  if (scope.empty()) {
    return Status::InvalidArgument("FROM clause resolved to no relations");
  }
  return scope;
}

Result<types::TypeRef> Translator::TypeOf(
    const term::TermRef& t, const std::vector<ScopeEntry>& scope,
    const types::TypeRef& elem_type) {
  std::vector<lera::Schema> schemas;
  schemas.reserve(scope.size());
  for (const ScopeEntry& e : scope) schemas.push_back(e.schema);
  return lera::InferExprType(t, schemas, *catalog_, elem_type);
}

Result<term::TermRef> Translator::TranslateExpr(
    const ExprPtr& expr, const std::vector<ScopeEntry>& scope,
    QuantifierCapture* capture) {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      return Term::Constant(expr->literal);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is only allowed as a select item");
    case ExprKind::kColumnRef: {
      int input = -1;
      int column = -1;
      for (size_t i = 0; i < scope.size(); ++i) {
        if (!expr->qualifier.empty() &&
            !EqualsIgnoreCase(scope[i].binding, expr->qualifier)) {
          continue;
        }
        for (size_t j = 0; j < scope[i].schema.size(); ++j) {
          if (EqualsIgnoreCase(scope[i].schema[j].name, expr->name)) {
            if (input >= 0) {
              return Status::TypeError("ambiguous column '" + expr->name +
                                       "'");
            }
            input = static_cast<int>(i);
            column = static_cast<int>(j);
          }
        }
      }
      if (input < 0) {
        return Status::NotFound("unknown column '" +
                                (expr->qualifier.empty()
                                     ? expr->name
                                     : expr->qualifier + "." + expr->name) +
                                "'");
      }
      return Term::Attr(input + 1, column + 1);
    }
    case ExprKind::kQuantifier: {
      QuantifierCapture inner;
      inner.active = true;
      EDS_ASSIGN_OR_RETURN(TermRef body,
                           TranslateExpr(expr->args[0], scope, &inner));
      if (inner.domain == nullptr) {
        return Status::TypeError(
            "quantifier body has no collection-valued subexpression to "
            "range over: " +
            expr->ToString());
      }
      return Term::Apply(expr->universal ? lera::kForAll : lera::kExists,
                         {inner.domain, std::move(body)});
    }
    case ExprKind::kCall:
      break;
  }

  const std::string upper = ToUpperAscii(expr->name);

  // VALUE(e): explicit object dereference.
  if (upper == "VALUE" && expr->args.size() == 1) {
    EDS_ASSIGN_OR_RETURN(TermRef arg,
                         TranslateExpr(expr->args[0], scope, capture));
    return lera::ValueOf(std::move(arg));
  }

  // Canonical operators and the attribute-as-function / quantifier-capture
  // cases need the translated arguments first.
  TermList args;
  args.reserve(expr->args.size());
  for (const ExprPtr& a : expr->args) {
    EDS_ASSIGN_OR_RETURN(TermRef t, TranslateExpr(a, scope, capture));
    args.push_back(std::move(t));
  }

  if (IsCanonicalOperator(upper)) {
    return Term::Apply(upper, std::move(args));
  }

  // Attribute name used as a function (§2.1, §3.3): Salary(Refactor)
  // becomes FIELD(VALUE(Refactor), 'Salary') — the translator infers the
  // generic functions and conversions.
  if (args.size() == 1) {
    TypeRef arg_type;
    {
      Result<TypeRef> r = TypeOf(args[0], scope,
                                 capture != nullptr && capture->active
                                     ? capture->elem_type
                                     : nullptr);
      if (r.ok()) arg_type = *r;
    }
    if (arg_type != nullptr) {
      if (const types::Field* field = arg_type->FindField(expr->name)) {
        (void)field;
        if (arg_type->kind() == TypeKind::kObject) {
          return lera::FieldAccess(lera::ValueOf(args[0]), expr->name);
        }
        return lera::FieldAccess(args[0], expr->name);
      }
      // Quantifier capture: F(collection) ranges F over the elements
      // (Fig. 4's ALL(Salary(Actors) > 10000)).
      if (capture != nullptr && capture->active &&
          capture->domain == nullptr && arg_type->is_collection() &&
          arg_type->element() != nullptr) {
        const TypeRef& elem = arg_type->element();
        if (const types::Field* f = elem->FindField(expr->name)) {
          (void)f;
          capture->domain = args[0];
          capture->elem_type = elem;
          TermRef elem_term = Term::Apply(lera::kElem, {});
          if (elem->kind() == TypeKind::kObject) {
            return lera::FieldAccess(lera::ValueOf(std::move(elem_term)),
                                     expr->name);
          }
          return lera::FieldAccess(std::move(elem_term), expr->name);
        }
      }
    }
  }

  if (catalog_->functions().Contains(expr->name) ||
      catalog_->FindFunctionSig(expr->name) != nullptr) {
    return Term::Apply(expr->name, std::move(args));
  }
  return Status::NotFound("unknown function or attribute '" + expr->name +
                          "'");
}

Result<term::TermRef> Translator::TranslateCore(
    const SelectCore& core, const std::string& recursive_view,
    const lera::Schema* recursive_schema) {
  EDS_ASSIGN_OR_RETURN(std::vector<ScopeEntry> scope,
                       BuildScope(core, recursive_view, recursive_schema));
  TermList inputs;
  inputs.reserve(scope.size());
  for (const ScopeEntry& e : scope) inputs.push_back(e.input);

  TermRef qual = Term::True();
  if (core.where != nullptr) {
    EDS_ASSIGN_OR_RETURN(qual, TranslateExpr(core.where, scope, nullptr));
  }

  if (core.group_by.empty()) {
    TermList projections;
    for (const SelectItem& item : core.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (size_t i = 0; i < scope.size(); ++i) {
          for (size_t j = 0; j < scope[i].schema.size(); ++j) {
            projections.push_back(Term::Attr(static_cast<int64_t>(i + 1),
                                             static_cast<int64_t>(j + 1)));
          }
        }
        continue;
      }
      EDS_ASSIGN_OR_RETURN(TermRef p,
                           TranslateExpr(item.expr, scope, nullptr));
      projections.push_back(std::move(p));
    }
    TermRef core_term = lera::Search(std::move(inputs), std::move(qual),
                                     std::move(projections));
    return core.distinct ? lera::Dedup(std::move(core_term))
                         : core_term;
  }

  // GROUP BY + MakeSet => SEARCH then NEST (Fig. 4). Restrictions of this
  // subset: group columns come first in the select list and must match the
  // GROUP BY expressions; exactly one MakeSet/MakeBag/MakeList item,
  // placed last.
  TermList group_terms;
  for (const ExprPtr& g : core.group_by) {
    EDS_ASSIGN_OR_RETURN(TermRef t, TranslateExpr(g, scope, nullptr));
    group_terms.push_back(std::move(t));
  }
  size_t collect_index = core.items.size();
  for (size_t i = 0; i < core.items.size(); ++i) {
    if (IsCollectCall(core.items[i].expr)) {
      if (collect_index != core.items.size()) {
        return Status::Unsupported(
            "at most one MakeSet/MakeBag/MakeList per grouped select");
      }
      collect_index = i;
    }
  }
  if (collect_index != core.items.size() - 1) {
    return Status::Unsupported(
        "grouped select must end with one MakeSet/MakeBag/MakeList item");
  }
  if (core.items.size() - 1 != group_terms.size()) {
    return Status::Unsupported(
        "grouped select items must be the GROUP BY expressions followed by "
        "the collected item");
  }
  TermList inner_projs;
  for (size_t i = 0; i + 1 < core.items.size(); ++i) {
    EDS_ASSIGN_OR_RETURN(TermRef t,
                         TranslateExpr(core.items[i].expr, scope, nullptr));
    if (!term::Equals(t, group_terms[i])) {
      return Status::Unsupported(
          "grouped select items must match the GROUP BY expressions in "
          "order");
    }
    inner_projs.push_back(std::move(t));
  }
  EDS_ASSIGN_OR_RETURN(
      TermRef collected,
      TranslateExpr(core.items.back().expr->args[0], scope, nullptr));
  inner_projs.push_back(std::move(collected));

  TermRef inner = lera::Search(std::move(inputs), std::move(qual),
                               std::move(inner_projs));
  const int64_t nested_col = static_cast<int64_t>(core.items.size());
  TermRef nested = lera::Nest(std::move(inner), {nested_col},
                              DeriveColumnName(core.items.back(),
                                               core.items.size() - 1));
  return core.distinct ? lera::Dedup(std::move(nested)) : nested;
}

Result<term::TermRef> Translator::TranslateQuery(const SelectStmt& stmt) {
  TermList branches;
  for (const SelectCore& core : stmt.cores) {
    EDS_ASSIGN_OR_RETURN(TermRef t, TranslateCore(core, "", nullptr));
    branches.push_back(std::move(t));
  }
  if (branches.size() == 1) return branches[0];
  return lera::UnionN(std::move(branches));
}

Result<catalog::ViewDef> Translator::BuildView(const Statement& stmt) {
  if (stmt.select == nullptr || stmt.select->cores.empty()) {
    return Status::InvalidArgument("view '" + stmt.name + "' has no body");
  }
  // Recursion: any core whose FROM mentions the view's own name.
  std::vector<bool> recursive(stmt.select->cores.size(), false);
  bool any_recursive = false;
  for (size_t i = 0; i < stmt.select->cores.size(); ++i) {
    for (const TableRef& ref : stmt.select->cores[i].from) {
      if (EqualsIgnoreCase(ref.name, stmt.name)) {
        recursive[i] = true;
        any_recursive = true;
      }
    }
  }

  // Base branches first: they fix the view's schema.
  TermList branches(stmt.select->cores.size());
  lera::Schema schema;
  bool have_schema = false;
  for (size_t i = 0; i < stmt.select->cores.size(); ++i) {
    if (recursive[i]) continue;
    EDS_ASSIGN_OR_RETURN(branches[i],
                         TranslateCore(stmt.select->cores[i], "", nullptr));
    if (!have_schema) {
      EDS_ASSIGN_OR_RETURN(schema, lera::InferSchema(branches[i], *catalog_));
      have_schema = true;
    }
  }
  if (!have_schema) {
    return Status::InvalidArgument("recursive view '" + stmt.name +
                                   "' has no non-recursive branch");
  }
  // Explicit column names override the inferred ones.
  if (!stmt.view_columns.empty()) {
    if (stmt.view_columns.size() != schema.size()) {
      return Status::InvalidArgument(
          "view '" + stmt.name + "' declares " +
          std::to_string(stmt.view_columns.size()) + " columns but produces " +
          std::to_string(schema.size()));
    }
    for (size_t i = 0; i < schema.size(); ++i) {
      schema[i].name = stmt.view_columns[i];
    }
  }
  for (size_t i = 0; i < stmt.select->cores.size(); ++i) {
    if (!recursive[i]) continue;
    EDS_ASSIGN_OR_RETURN(
        branches[i],
        TranslateCore(stmt.select->cores[i], stmt.name, &schema));
  }

  catalog::ViewDef def;
  def.name = stmt.name;
  def.columns = schema;
  def.is_recursive = any_recursive;
  TermRef body =
      branches.size() == 1 ? branches[0] : lera::UnionN(std::move(branches));
  def.definition = any_recursive ? lera::Fix(stmt.name, std::move(body))
                                 : std::move(body);
  return def;
}

}  // namespace eds::esql
