#ifndef EDS_ESQL_TRANSLATOR_H_
#define EDS_ESQL_TRANSLATOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/ast.h"
#include "lera/schema.h"
#include "term/term.h"

namespace eds::esql {

// Translates analyzed ESQL queries into LERA terms (§3, §5's "straight-
// forward translation ... after parsing"):
//
//   * a SELECT core becomes a SEARCH over its FROM relations; column
//     references become ATTR(i, j); attribute-name-as-function becomes
//     FIELD (with VALUE inserted for object dereference — the type
//     inference role of §5's "type checking function rules");
//   * non-recursive view references are replaced by the view's stored LERA
//     definition (query modification, [Stonebraker76]); the merging rules
//     later flatten the resulting operator stack;
//   * GROUP BY + MakeSet becomes SEARCH followed by NEST (Fig. 4);
//   * recursive views become FIX over the UNION of their branches
//     (Fig. 5), with in-definition references kept as RELATION(view);
//   * ALL / EXIST quantifiers become FORALL / EXISTS with the collection
//     domain captured from the body (Salary(Actors) > 10000 quantifies
//     over Actors, applying Salary to each element).
class Translator {
 public:
  explicit Translator(const catalog::Catalog* cat) : catalog_(cat) {}

  // Translates a query expression; views are inlined.
  Result<term::TermRef> TranslateQuery(const SelectStmt& stmt);

  // Builds the catalog entry for a CREATE VIEW statement (recursion
  // detected from self-references in FROM clauses).
  Result<catalog::ViewDef> BuildView(const Statement& stmt);

 private:
  struct ScopeEntry {
    std::string binding;  // alias if given, else the relation name
    term::TermRef input;  // LERA input term
    lera::Schema schema;
  };

  // Quantifier translation state: at most one collection domain is
  // captured per quantifier body.
  struct QuantifierCapture {
    bool active = false;
    term::TermRef domain;
    types::TypeRef elem_type;
  };

  Result<term::TermRef> TranslateCore(const SelectCore& core,
                                      const std::string& recursive_view,
                                      const lera::Schema* recursive_schema);

  Result<std::vector<ScopeEntry>> BuildScope(
      const SelectCore& core, const std::string& recursive_view,
      const lera::Schema* recursive_schema);

  Result<term::TermRef> TranslateExpr(const ExprPtr& expr,
                                      const std::vector<ScopeEntry>& scope,
                                      QuantifierCapture* capture);

  Result<types::TypeRef> TypeOf(const term::TermRef& t,
                                const std::vector<ScopeEntry>& scope,
                                const types::TypeRef& elem_type);

  const catalog::Catalog* catalog_;
};

// Column-name derivation for a select item: alias, else the column /
// attribute-function name, else the call name.
std::string DeriveColumnName(const SelectItem& item, size_t position);

}  // namespace eds::esql

#endif  // EDS_ESQL_TRANSLATOR_H_
