#ifndef EDS_ESQL_ANALYZER_H_
#define EDS_ESQL_ANALYZER_H_

#include "catalog/catalog.h"
#include "common/result.h"
#include "esql/ast.h"

namespace eds::esql {

// DDL analysis: resolves type expressions against the catalog's type
// registry and applies CREATE TYPE / CREATE TABLE statements. (CREATE VIEW
// goes through the Translator, which must build the view's LERA
// definition.)
class Analyzer {
 public:
  explicit Analyzer(catalog::Catalog* cat) : catalog_(cat) {}

  Result<types::TypeRef> ResolveTypeExpr(const TypeExpr& t,
                                         const std::string& name_hint = "");

  // Registers the named type (and any FUNCTION signatures) from a
  // kCreateType statement.
  Status ApplyCreateType(const Statement& stmt);

  // Registers the table schema from a kCreateTable statement. Storage
  // creation is the session's job.
  Status ApplyCreateTable(const Statement& stmt);

 private:
  catalog::Catalog* catalog_;
};

}  // namespace eds::esql

#endif  // EDS_ESQL_ANALYZER_H_
