#include "catalog/catalog.h"

#include "common/strings.h"

namespace eds::catalog {

const types::Field* TableDef::FindColumn(const std::string& col_name) const {
  for (const types::Field& f : columns) {
    if (EqualsIgnoreCase(f.name, col_name)) return &f;
  }
  return nullptr;
}

int TableDef::ColumnIndex(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Catalog::Catalog() {
  value::FunctionLibrary::InstallBuiltins(&functions_);
}

Status Catalog::CreateTable(TableDef def) {
  std::string key = ToUpperAscii(def.name);
  if (tables_.count(key) > 0 || views_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + def.name +
                                 "' already exists");
  }
  relation_order_.push_back(def.name);
  tables_.emplace(std::move(key), std::move(def));
  ++epoch_;
  return Status::OK();
}

Result<const TableDef*> Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToUpperAscii(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, def] : tables_) out.push_back(def.name);
  return out;
}

Status Catalog::CreateView(ViewDef def) {
  std::string key = ToUpperAscii(def.name);
  if (tables_.count(key) > 0 || views_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + def.name +
                                 "' already exists");
  }
  relation_order_.push_back(def.name);
  views_.emplace(std::move(key), std::move(def));
  ++epoch_;
  return Status::OK();
}

Result<const ViewDef*> Catalog::FindView(const std::string& name) const {
  auto it = views_.find(ToUpperAscii(name));
  if (it == views_.end()) {
    return Status::NotFound("unknown view '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToUpperAscii(name)) > 0;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [key, def] : views_) out.push_back(def.name);
  return out;
}

Result<std::vector<types::Field>> Catalog::RelationSchema(
    const std::string& name) const {
  std::string key = ToUpperAscii(name);
  if (auto it = tables_.find(key); it != tables_.end()) {
    return it->second.columns;
  }
  if (auto it = views_.find(key); it != views_.end()) {
    return it->second.columns;
  }
  return Status::NotFound("unknown relation '" + name + "'");
}

Status Catalog::AddConstraint(ConstraintDef def) {
  for (const ConstraintDef& c : constraints_) {
    if (EqualsIgnoreCase(c.name, def.name)) {
      return Status::AlreadyExists("constraint '" + def.name +
                                   "' already exists");
    }
  }
  constraints_.push_back(std::move(def));
  ++epoch_;
  return Status::OK();
}

Status Catalog::DeclareFunction(FunctionSig sig) {
  std::string key = ToUpperAscii(sig.name);
  std::string display_name = sig.name;
  auto [it, inserted] = function_sigs_.emplace(std::move(key), std::move(sig));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("function signature '" + display_name +
                                 "' already declared");
  }
  ++epoch_;
  return Status::OK();
}

const FunctionSig* Catalog::FindFunctionSig(const std::string& name) const {
  auto it = function_sigs_.find(ToUpperAscii(name));
  return it == function_sigs_.end() ? nullptr : &it->second;
}

std::unique_ptr<Catalog> Catalog::Clone() const {
  auto out = std::make_unique<Catalog>();
  out->types_.CloneFrom(types_);
  out->functions_.CloneFrom(functions_);
  out->tables_ = tables_;
  out->views_ = views_;
  out->relation_order_ = relation_order_;
  out->constraints_ = constraints_;
  out->function_sigs_ = function_sigs_;
  out->epoch_.store(epoch_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return out;
}

}  // namespace eds::catalog
