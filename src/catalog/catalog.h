#ifndef EDS_CATALOG_CATALOG_H_
#define EDS_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"
#include "types/registry.h"
#include "types/type.h"
#include "value/collection_lib.h"

namespace eds::catalog {

// A stored relation: TABLE FILM (Numf : NUMERIC, Title : Text, ...).
struct TableDef {
  std::string name;
  std::vector<types::Field> columns;

  const types::Field* FindColumn(const std::string& col_name) const;
  int ColumnIndex(const std::string& col_name) const;  // -1 if absent
};

// A view: its ESQL definition is analyzed once and stored as a LERA term so
// query modification (the [Stonebraker76] step) is plain term substitution.
// Recursive views carry is_recursive and their definition contains a FIX.
struct ViewDef {
  std::string name;
  std::vector<types::Field> columns;
  term::TermRef definition;  // LERA term producing the view's rows
  bool is_recursive = false;
  std::string source_text;   // original CREATE VIEW text, for schema dumps
};

// An integrity constraint, kept in the *rule language* as the paper
// prescribes (§6.1): the DBA declares semantic knowledge with the same
// formalism the optimizer uses. The text is compiled by the semantic rule
// library when an optimizer is built.
struct ConstraintDef {
  std::string name;
  std::string rule_text;
};

// Declared signature of an ADT function, used by the ESQL type checker for
// user functions (builtin generic collection functions are typed
// structurally in the analyzer).
struct FunctionSig {
  std::string name;
  std::vector<types::TypeRef> params;
  types::TypeRef result;
};

// The schema catalog: named types, tables, views, constraints and the ADT
// function library. This is the "context" of a rule application — rules
// consult it through the type oracle when checking ISA constraints.
class Catalog {
 public:
  Catalog();

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  types::TypeRegistry& types() { return types_; }
  const types::TypeRegistry& types() const { return types_; }

  value::FunctionLibrary& functions() { return functions_; }
  const value::FunctionLibrary& functions() const { return functions_; }

  // ---- tables ----
  Status CreateTable(TableDef def);
  Result<const TableDef*> FindTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // ---- views ----
  Status CreateView(ViewDef def);
  Result<const ViewDef*> FindView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  // Either a table or a view: returns the column schema of `name`.
  Result<std::vector<types::Field>> RelationSchema(
      const std::string& name) const;

  // Tables and views in declaration order (dependency-safe for dumps).
  const std::vector<std::string>& RelationNamesInOrder() const {
    return relation_order_;
  }

  // ---- integrity constraints ----
  Status AddConstraint(ConstraintDef def);
  const std::vector<ConstraintDef>& constraints() const { return constraints_; }

  // ---- ADT function signatures ----
  Status DeclareFunction(FunctionSig sig);
  const FunctionSig* FindFunctionSig(const std::string& name) const;
  const std::map<std::string, FunctionSig>& function_sigs() const {
    return function_sigs_;
  }

  // ---- schema epoch ----
  // Monotonic counter bumped by every successful schema mutation (table,
  // view, constraint, function declaration). The rewritten-plan cache
  // (src/srv/plan_cache.h) keys entries on this epoch so any DDL lazily
  // invalidates every plan rewritten under the old schema. Mutations made
  // behind the catalog's back (directly through types()/functions())
  // must call BumpEpoch() themselves. The counter is atomic so serving
  // threads may poll it concurrently with DDL; the catalog's *contents* are
  // NOT thread-safe — concurrent readers must work from a Clone() published
  // as a serving snapshot (src/srv/snapshot.h).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  // Deep-copies the schema into a fresh catalog. Type nodes, view terms and
  // function handles are immutable/shared, so the copy is cheap (maps of
  // shared_ptrs); the maps themselves are independent, which is what
  // serving snapshots need: the clone stays frozen while the live catalog
  // keeps mutating. The clone carries the source's epoch.
  std::unique_ptr<Catalog> Clone() const;

 private:
  types::TypeRegistry types_;
  value::FunctionLibrary functions_;
  std::map<std::string, TableDef> tables_;       // upper-cased keys
  std::map<std::string, ViewDef> views_;         // upper-cased keys
  std::vector<std::string> relation_order_;      // tables+views as declared
  std::vector<ConstraintDef> constraints_;
  std::map<std::string, FunctionSig> function_sigs_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace eds::catalog

#endif  // EDS_CATALOG_CATALOG_H_
