#ifndef EDS_LERA_SCHEMA_H_
#define EDS_LERA_SCHEMA_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "lera/lera.h"
#include "term/term.h"
#include "types/type.h"

namespace eds::lera {

// Output schema (column names + types) of relational LERA terms, and types
// of scalar expressions within them. This implements the "type checking
// function rules" role of §5: the analyzer and the rewriter's SCHEMA /
// ISA machinery both go through here.

using Schema = std::vector<types::Field>;

// Extra relation schemas visible during inference (used while defining a
// recursive view, whose FIX body references the view before it exists in
// the catalog).
using SchemaEnv = std::map<std::string, Schema>;

// Inference memo keyed by term node identity. Terms are immutable (and
// hash-consed), so a live node's pointer uniquely identifies its subtree;
// the caller must keep every memoized term alive for the memo's lifetime
// and use one memo per (catalog, env) pair. The rewrite engine threads one
// through a whole run, which turns the naturally O(depth²) inference over
// nested views into O(depth).
using SchemaMemo = std::unordered_map<const term::Term*, Result<Schema>>;

// Infers the output schema of a relational LERA term. `memo`, when given,
// caches every subterm's result across calls.
Result<Schema> InferSchema(const term::TermRef& t,
                           const catalog::Catalog& cat,
                           const SchemaEnv* env = nullptr,
                           SchemaMemo* memo = nullptr);

// Infers the type of a scalar expression, given the schemas of the
// enclosing operator's inputs (ATTR(i, j) resolves into input_schemas[i-1]).
// Understands constants, ATTR, FIELD, VALUE, FORALL/EXISTS/ELEM, the builtin
// function library's result types, and user ADT function signatures from the
// catalog. `elem_type` is the type ELEM() denotes inside a quantifier body
// (null outside quantifiers).
Result<types::TypeRef> InferExprType(const term::TermRef& expr,
                                     const std::vector<Schema>& input_schemas,
                                     const catalog::Catalog& cat,
                                     const types::TypeRef& elem_type = nullptr,
                                     const SchemaEnv* env = nullptr);

// Derives a column name for a projection expression: ATTR picks up the
// source column's name, FIELD its field name; anything else gets the functor
// name (deduplication is the caller's concern).
std::string ProjectionName(const term::TermRef& expr,
                           const std::vector<Schema>& input_schemas);

}  // namespace eds::lera

#endif  // EDS_LERA_SCHEMA_H_
