#ifndef EDS_LERA_SCHEMA_H_
#define EDS_LERA_SCHEMA_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "gov/governor.h"
#include "lera/lera.h"
#include "term/term.h"
#include "types/type.h"

namespace eds::lera {

// Output schema (column names + types) of relational LERA terms, and types
// of scalar expressions within them. This implements the "type checking
// function rules" role of §5: the analyzer and the rewriter's SCHEMA /
// ISA machinery both go through here.

using Schema = std::vector<types::Field>;

// Extra relation schemas visible during inference (used while defining a
// recursive view, whose FIX body references the view before it exists in
// the catalog).
using SchemaEnv = std::map<std::string, Schema>;

// Inference memo keyed by term node identity. Terms are immutable (and
// hash-consed), so a live node's pointer uniquely identifies its subtree;
// the caller must keep every memoized term alive for the memo's lifetime
// and use one memo per (catalog, env) pair. The rewrite engine threads one
// through a whole run, which turns the naturally O(depth²) inference over
// nested views into O(depth).
using SchemaMemo = std::unordered_map<const term::Term*, Result<Schema>>;

// Infers the output schema of a relational LERA term. `memo`, when given,
// caches every subterm's result across calls. `guard`, when given, is the
// query governor's chokepoint in this recursion: a deep view/operator nest
// is rechecked at every descent, and a trip aborts the inference with
// ResourceExhausted (trip results are never memoized — the same subtree
// must infer normally on a later, unguarded call).
Result<Schema> InferSchema(const term::TermRef& t,
                           const catalog::Catalog& cat,
                           const SchemaEnv* env = nullptr,
                           SchemaMemo* memo = nullptr,
                           gov::QueryGuard* guard = nullptr);

// Memo for InferExprType, mirroring SchemaMemo but two-dimensional: an
// expression's type depends on the enclosing operator's input schemas, so
// entries are keyed on (canonical node identity, caller-supplied scope key)
// — the rewrite engine already digests each scope's defining input terms
// into such a key for its normal-form memo. Unlike SchemaMemo, entries pin
// their keyed term: constraint evaluation types method-built terms that may
// die (and have their address recycled) before the run ends, so the memo
// keeps them alive itself instead of relying on the caller. Use one memo
// per (catalog, env) pair. hits/misses feed the obs metrics registry.
class ExprTypeMemo {
 public:
  struct Key {
    const term::Term* node;
    uint64_t scope;
    bool operator==(const Key& o) const {
      return node == o.node && scope == o.scope;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = reinterpret_cast<uintptr_t>(k.node);
      h ^= k.scope + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    term::TermRef pin;  // keeps the keyed node's address from being reused
    Result<types::TypeRef> type;
  };

  const Entry* Find(const term::TermRef& expr, uint64_t scope_key) const {
    auto it = map_.find(Key{expr.get(), scope_key});
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    return &it->second;
  }
  void Insert(const term::TermRef& expr, uint64_t scope_key,
              Result<types::TypeRef> type) {
    map_.emplace(Key{expr.get(), scope_key}, Entry{expr, std::move(type)});
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<Key, Entry, KeyHash> map_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

// Infers the type of a scalar expression, given the schemas of the
// enclosing operator's inputs (ATTR(i, j) resolves into input_schemas[i-1]).
// Understands constants, ATTR, FIELD, VALUE, FORALL/EXISTS/ELEM, the builtin
// function library's result types, and user ADT function signatures from the
// catalog. `elem_type` is the type ELEM() denotes inside a quantifier body
// (null outside quantifiers).
//
// `memo`, when given, caches results keyed on (node, scope_key); the caller
// guarantees scope_key identifies `input_schemas`' content. Subexpressions
// inside quantifier bodies are excluded automatically (their types also
// depend on elem_type, which the key does not carry).
Result<types::TypeRef> InferExprType(const term::TermRef& expr,
                                     const std::vector<Schema>& input_schemas,
                                     const catalog::Catalog& cat,
                                     const types::TypeRef& elem_type = nullptr,
                                     const SchemaEnv* env = nullptr,
                                     ExprTypeMemo* memo = nullptr,
                                     uint64_t scope_key = 0);

// Derives a column name for a projection expression: ATTR picks up the
// source column's name, FIELD its field name; anything else gets the functor
// name (deduplication is the caller's concern).
std::string ProjectionName(const term::TermRef& expr,
                           const std::vector<Schema>& input_schemas);

}  // namespace eds::lera

#endif  // EDS_LERA_SCHEMA_H_
