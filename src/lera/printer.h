#ifndef EDS_LERA_PRINTER_H_
#define EDS_LERA_PRINTER_H_

#include <string>

#include "term/term.h"

namespace eds::lera {

// Renders a LERA tree as an indented plan, one operator per line:
//
//   SEARCH [$1.1 = $2.1 AND FIELD(VALUE($1.2), 'Name') = 'Quinn']
//     -> $2.2, $2.3, FIELD(VALUE($1.2), 'Salary')
//     RELATION APPEARS_IN
//     RELATION FILM
//
// Scalar expressions stay on one line (Term::ToString form).
std::string FormatPlan(const term::TermRef& t);

}  // namespace eds::lera

#endif  // EDS_LERA_PRINTER_H_
