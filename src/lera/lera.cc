#include "lera/lera.h"

#include <functional>

namespace eds::lera {

using term::Term;
using term::TermList;
using term::TermRef;

term::TermRef Relation(const std::string& name) {
  return Term::Relation(name);
}

term::TermRef Search(TermList inputs, TermRef qual, TermList projections) {
  return Term::Apply(kSearch, {Term::List(std::move(inputs)), std::move(qual),
                               Term::List(std::move(projections))});
}

term::TermRef UnionN(TermList inputs) {
  return Term::Apply(kUnion, {Term::MakeSet(std::move(inputs))});
}

term::TermRef Difference(TermRef a, TermRef b) {
  return Term::Apply(kDifference, {std::move(a), std::move(b)});
}

term::TermRef Intersect(TermRef a, TermRef b) {
  return Term::Apply(kIntersect, {std::move(a), std::move(b)});
}

term::TermRef Filter(TermRef input, TermRef qual) {
  return Term::Apply(kFilter, {std::move(input), std::move(qual)});
}

term::TermRef Project(TermRef input, TermList projections) {
  return Term::Apply(kProject,
                     {std::move(input), Term::List(std::move(projections))});
}

term::TermRef Join(TermRef a, TermRef b, TermRef qual) {
  return Term::Apply(kJoin, {std::move(a), std::move(b), std::move(qual)});
}

term::TermRef Fix(const std::string& rel_name, TermRef expr) {
  return Term::Apply(kFix, {Relation(rel_name), std::move(expr)});
}

term::TermRef Nest(TermRef input, std::vector<int64_t> nested_columns,
                   const std::string& new_column) {
  TermList cols;
  cols.reserve(nested_columns.size());
  for (int64_t c : nested_columns) cols.push_back(Term::Int(c));
  return Term::Apply(kNest, {std::move(input), Term::List(std::move(cols)),
                             Term::Str(new_column)});
}

term::TermRef Unnest(TermRef input, int64_t column) {
  return Term::Apply(kUnnest, {std::move(input), Term::Int(column)});
}

term::TermRef Dedup(TermRef input) {
  return Term::Apply(kDedup, {std::move(input)});
}

term::TermRef FieldAccess(TermRef e, const std::string& field) {
  return Term::Apply(kField, {std::move(e), Term::Str(field)});
}

term::TermRef ValueOf(TermRef e) {
  return Term::Apply(kValueOf, {std::move(e)});
}

term::TermRef Attr(int64_t input, int64_t column) {
  return Term::Attr(input, column);
}

bool IsRelationalOp(const term::TermRef& t) {
  if (!t->is_apply()) return false;
  const std::string& f = t->functor();
  return f == term::kRelation || f == kSearch || f == kUnion ||
         f == kDifference || f == kIntersect || f == kFilter ||
         f == kProject || f == kJoin || f == kFix || f == kNest ||
         f == kUnnest || f == kDedup;
}

bool IsRelation(const term::TermRef& t) {
  return t->IsApply(term::kRelation, 1) && t->arg(0)->is_constant() &&
         t->arg(0)->constant().kind() == value::ValueKind::kString;
}

Result<std::string> RelationName(const term::TermRef& t) {
  if (!IsRelation(t)) {
    return Status::InvalidArgument("not a RELATION term: " + t->ToString());
  }
  return t->arg(0)->constant().AsString();
}

bool IsSearch(const term::TermRef& t) { return t->IsApply(kSearch, 3); }

Result<term::TermList> SearchInputs(const term::TermRef& t) {
  if (!IsSearch(t) || !t->arg(0)->IsApply(term::kList)) {
    return Status::InvalidArgument("not a well-formed SEARCH: " +
                                   t->ToString());
  }
  return t->arg(0)->args();
}

Result<term::TermRef> SearchQual(const term::TermRef& t) {
  if (!IsSearch(t)) {
    return Status::InvalidArgument("not a SEARCH: " + t->ToString());
  }
  return t->arg(1);
}

Result<term::TermList> SearchProjections(const term::TermRef& t) {
  if (!IsSearch(t) || !t->arg(2)->IsApply(term::kList)) {
    return Status::InvalidArgument("not a well-formed SEARCH: " +
                                   t->ToString());
  }
  return t->arg(2)->args();
}

bool IsUnion(const term::TermRef& t) {
  return t->IsApply(kUnion, 1) && t->arg(0)->IsApply(term::kSet);
}

Result<term::TermList> UnionInputs(const term::TermRef& t) {
  if (!IsUnion(t)) {
    return Status::InvalidArgument("not a well-formed UNION: " +
                                   t->ToString());
  }
  return t->arg(0)->args();
}

bool IsFix(const term::TermRef& t) {
  return t->IsApply(kFix, 2) && IsRelation(t->arg(0));
}

Result<std::string> FixRelationName(const term::TermRef& t) {
  if (!IsFix(t)) {
    return Status::InvalidArgument("not a FIX: " + t->ToString());
  }
  return RelationName(t->arg(0));
}

Result<term::TermRef> FixBody(const term::TermRef& t) {
  if (!IsFix(t)) {
    return Status::InvalidArgument("not a FIX: " + t->ToString());
  }
  return t->arg(1);
}

bool IsAttr(const term::TermRef& t) {
  return t->IsApply(term::kAttr, 2) && t->arg(0)->is_constant() &&
         t->arg(1)->is_constant() &&
         t->arg(0)->constant().kind() == value::ValueKind::kInt &&
         t->arg(1)->constant().kind() == value::ValueKind::kInt;
}

Result<AttrRef> GetAttr(const term::TermRef& t) {
  if (!IsAttr(t)) {
    return Status::InvalidArgument("not an ATTR reference: " + t->ToString());
  }
  return AttrRef{t->arg(0)->constant().AsInt(), t->arg(1)->constant().AsInt()};
}

namespace {

Status ValidateRec(const term::TermRef& t, bool relational_position) {
  if (t->is_variable() || t->is_collection_variable()) {
    // Patterns are validated by the rule compiler, not here; a query tree
    // must be ground.
    return Status::InvalidArgument("variable '" + t->var_name() +
                                   "' in a query tree");
  }
  if (t->is_constant()) {
    if (relational_position) {
      return Status::InvalidArgument("constant in relational position: " +
                                     t->ToString());
    }
    return Status::OK();
  }
  const std::string& f = t->functor();
  if (f == term::kRelation) {
    if (!IsRelation(t)) {
      return Status::InvalidArgument("malformed RELATION: " + t->ToString());
    }
    return Status::OK();
  }
  if (f == kSearch) {
    if (t->arity() != 3 || !t->arg(0)->IsApply(term::kList) ||
        !t->arg(2)->IsApply(term::kList)) {
      return Status::InvalidArgument("malformed SEARCH: " + t->ToString());
    }
    if (t->arg(0)->arity() == 0) {
      return Status::InvalidArgument("SEARCH with no inputs");
    }
    for (const auto& in : t->arg(0)->args()) {
      EDS_RETURN_IF_ERROR(ValidateRec(in, /*relational_position=*/true));
    }
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(1), false));
    for (const auto& p : t->arg(2)->args()) {
      EDS_RETURN_IF_ERROR(ValidateRec(p, false));
    }
    if (t->arg(2)->arity() == 0) {
      return Status::InvalidArgument("SEARCH with empty projection list");
    }
    return Status::OK();
  }
  if (f == kUnion) {
    if (t->arity() != 1 || !t->arg(0)->IsApply(term::kSet) ||
        t->arg(0)->arity() == 0) {
      return Status::InvalidArgument("malformed UNION: " + t->ToString());
    }
    for (const auto& in : t->arg(0)->args()) {
      EDS_RETURN_IF_ERROR(ValidateRec(in, true));
    }
    return Status::OK();
  }
  if (f == kDifference || f == kIntersect) {
    if (t->arity() != 2) {
      return Status::InvalidArgument("malformed " + f + ": " + t->ToString());
    }
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(0), true));
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(1), true));
    return Status::OK();
  }
  if (f == kFilter) {
    if (t->arity() != 2) {
      return Status::InvalidArgument("malformed FILTER: " + t->ToString());
    }
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(0), true));
    return ValidateRec(t->arg(1), false);
  }
  if (f == kProject) {
    if (t->arity() != 2 || !t->arg(1)->IsApply(term::kList) ||
        t->arg(1)->arity() == 0) {
      return Status::InvalidArgument("malformed PROJECT: " + t->ToString());
    }
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(0), true));
    for (const auto& p : t->arg(1)->args()) {
      EDS_RETURN_IF_ERROR(ValidateRec(p, false));
    }
    return Status::OK();
  }
  if (f == kJoin) {
    if (t->arity() != 3) {
      return Status::InvalidArgument("malformed JOIN: " + t->ToString());
    }
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(0), true));
    EDS_RETURN_IF_ERROR(ValidateRec(t->arg(1), true));
    return ValidateRec(t->arg(2), false);
  }
  if (f == kFix) {
    if (!IsFix(t)) {
      return Status::InvalidArgument("malformed FIX: " + t->ToString());
    }
    return ValidateRec(t->arg(1), true);
  }
  if (f == kNest) {
    if (t->arity() != 3 || !t->arg(1)->IsApply(term::kList) ||
        !t->arg(2)->is_constant()) {
      return Status::InvalidArgument("malformed NEST: " + t->ToString());
    }
    return ValidateRec(t->arg(0), true);
  }
  if (f == kUnnest) {
    if (t->arity() != 2 || !t->arg(1)->is_constant()) {
      return Status::InvalidArgument("malformed UNNEST: " + t->ToString());
    }
    return ValidateRec(t->arg(0), true);
  }
  if (f == kDedup) {
    if (t->arity() != 1) {
      return Status::InvalidArgument("malformed DEDUP: " + t->ToString());
    }
    return ValidateRec(t->arg(0), true);
  }
  // Anything else is a scalar expression functor.
  if (relational_position) {
    return Status::InvalidArgument("expected a relational operator, got " +
                                   t->ToString());
  }
  if (f == term::kAttr && !IsAttr(t)) {
    return Status::InvalidArgument("malformed ATTR: " + t->ToString());
  }
  if (IsAttr(t)) {
    EDS_ASSIGN_OR_RETURN(AttrRef a, GetAttr(t));
    if (a.input < 1 || a.column < 1) {
      return Status::InvalidArgument("non-positive ATTR index: " +
                                     t->ToString());
    }
    return Status::OK();
  }
  for (const auto& a : t->args()) {
    EDS_RETURN_IF_ERROR(ValidateRec(a, false));
  }
  return Status::OK();
}

}  // namespace

Status Validate(const term::TermRef& t) {
  return ValidateRec(t, /*relational_position=*/true);
}

void CollectAttrs(const term::TermRef& expr, std::vector<AttrRef>* out) {
  if (IsAttr(expr)) {
    auto a = GetAttr(expr);
    if (a.ok()) out->push_back(*a);
    return;
  }
  if (expr->is_apply()) {
    for (const auto& a : expr->args()) CollectAttrs(a, out);
  }
}

term::TermRef MapAttrs(
    const term::TermRef& expr,
    const std::function<term::TermRef(int64_t, int64_t)>& map) {
  if (IsAttr(expr)) {
    auto a = GetAttr(expr);
    if (!a.ok()) return expr;
    return map(a->input, a->column);
  }
  if (!expr->is_apply()) return expr;
  term::TermList args;
  args.reserve(expr->arity());
  bool changed = false;
  for (const auto& arg : expr->args()) {
    term::TermRef m = MapAttrs(arg, map);
    if (m.get() != arg.get()) changed = true;
    args.push_back(std::move(m));
  }
  if (!changed) return expr;
  return term::Term::Apply(expr->functor(), std::move(args));
}

}  // namespace eds::lera
