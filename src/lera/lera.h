#ifndef EDS_LERA_LERA_H_
#define EDS_LERA_LERA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "term/term.h"

namespace eds::lera {

// LERA operators are ordinary term functors (the paper's uniform formalism:
// "LERA operators interpreted as functions"). This header fixes the
// vocabulary and provides typed constructors/recognizers.
//
//   RELATION('FILM')                       base table or view reference
//   SEARCH(LIST(inputs...), qual, LIST(projs...))
//       n-ary join + filter + project: the paper's most powerful compound
//       operator. Attribute references in qual/projs are ATTR(i, j) over the
//       concatenated inputs (1-based), printed $i.j.
//   UNION(SET(inputs...))                  n-ary union (the paper's union*)
//   DIFFERENCE(a, b), INTERSECT(a, b)      set operations on relations
//   FILTER(input, qual)                    basic restriction
//   PROJECT(input, LIST(projs...))         basic projection
//   JOIN(a, b, qual)                       binary join (product + filter)
//   FIX(RELATION('R'), expr)               fixpoint: R = expr(R)
//   NEST(input, LIST(col_idx...), 'name')  nest columns into a SET column
//   UNNEST(input, col_idx)                 flatten a collection column
//   DEDUP(input)                           duplicate elimination (DISTINCT;
//                                          the Fig. 1 bag->set conversion
//                                          lifted to relations)
//
// Scalar expression functors inside qual/projs: the FunctionLibrary names
// (EQ, AND, MEMBER, ...), plus
//   ATTR(i, j)            attribute reference
//   FIELD(e, 'name')      tuple/object-value attribute access (the paper's
//                         attribute-name-as-function, after type checking)
//   VALUE(e)              object dereference: OID -> its tuple value
//   FORALL(coll, pred)    the ESQL ALL quantifier; inside pred, ELEM()
//   EXISTS(coll, pred)    denotes the quantified element
//   ELEM()                current quantified element (one level)

inline constexpr const char* kSearch = "SEARCH";
inline constexpr const char* kUnion = "UNION";        // arity 1: SET of inputs
inline constexpr const char* kDifference = "DIFFERENCE";
inline constexpr const char* kIntersect = "INTERSECT";
inline constexpr const char* kFilter = "FILTER";
inline constexpr const char* kProject = "PROJECT";
inline constexpr const char* kJoin = "JOIN";
inline constexpr const char* kFix = "FIX";
inline constexpr const char* kNest = "NEST";
inline constexpr const char* kUnnest = "UNNEST";
inline constexpr const char* kDedup = "DEDUP";  // arity 1: bag -> set
inline constexpr const char* kField = "FIELD";
inline constexpr const char* kValueOf = "VALUE";
inline constexpr const char* kForAll = "FORALL";
inline constexpr const char* kExists = "EXISTS";
inline constexpr const char* kElem = "ELEM";

// ---- constructors ----

term::TermRef Relation(const std::string& name);
term::TermRef Search(term::TermList inputs, term::TermRef qual,
                     term::TermList projections);
term::TermRef UnionN(term::TermList inputs);
term::TermRef Difference(term::TermRef a, term::TermRef b);
term::TermRef Intersect(term::TermRef a, term::TermRef b);
term::TermRef Filter(term::TermRef input, term::TermRef qual);
term::TermRef Project(term::TermRef input, term::TermList projections);
term::TermRef Join(term::TermRef a, term::TermRef b, term::TermRef qual);
term::TermRef Fix(const std::string& rel_name, term::TermRef expr);
term::TermRef Nest(term::TermRef input, std::vector<int64_t> nested_columns,
                   const std::string& new_column);
term::TermRef Unnest(term::TermRef input, int64_t column);
// Duplicate elimination (SELECT DISTINCT; the Fig. 1 bag->set conversion
// lifted to relations).
term::TermRef Dedup(term::TermRef input);
term::TermRef FieldAccess(term::TermRef e, const std::string& field);
term::TermRef ValueOf(term::TermRef e);
term::TermRef Attr(int64_t input, int64_t column);

// ---- recognizers / accessors (preconditions checked, Internal on misuse) --

// True if `t` can produce a relation: any of the operators above.
bool IsRelationalOp(const term::TermRef& t);

// RELATION('X') -> "X".
bool IsRelation(const term::TermRef& t);
Result<std::string> RelationName(const term::TermRef& t);

bool IsSearch(const term::TermRef& t);
// SEARCH accessors; inputs() returns the LIST's elements.
Result<term::TermList> SearchInputs(const term::TermRef& t);
Result<term::TermRef> SearchQual(const term::TermRef& t);
Result<term::TermList> SearchProjections(const term::TermRef& t);

bool IsUnion(const term::TermRef& t);
Result<term::TermList> UnionInputs(const term::TermRef& t);

bool IsFix(const term::TermRef& t);
Result<std::string> FixRelationName(const term::TermRef& t);
Result<term::TermRef> FixBody(const term::TermRef& t);

bool IsAttr(const term::TermRef& t);
// ATTR(i, j) -> {i, j}.
struct AttrRef {
  int64_t input;
  int64_t column;
};
Result<AttrRef> GetAttr(const term::TermRef& t);

// Structural well-formedness check of a LERA tree: operators have the right
// arities, LIST/SET wrappers are present, ATTR indices are positive. Does
// not need a catalog (schema checking lives in lera/schema.h).
Status Validate(const term::TermRef& t);

// Collects all ATTR references appearing in an expression term.
void CollectAttrs(const term::TermRef& expr, std::vector<AttrRef>* out);

// Rewrites every ATTR(i, j) in `expr` through `map`: returns the expression
// with ATTR(i, j) replaced by map(i, j). Used by rules that renumber
// attribute references when inputs move around.
term::TermRef MapAttrs(
    const term::TermRef& expr,
    const std::function<term::TermRef(int64_t, int64_t)>& map);

}  // namespace eds::lera

#endif  // EDS_LERA_LERA_H_
