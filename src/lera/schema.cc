#include "lera/schema.h"

#include "common/strings.h"

namespace eds::lera {

using term::TermRef;
using types::Field;
using types::Type;
using types::TypeKind;
using types::TypeRef;

namespace {

Result<std::vector<Schema>> InputSchemas(const term::TermList& inputs,
                                         const catalog::Catalog& cat,
                                         const SchemaEnv* env,
                                         SchemaMemo* memo,
                                         gov::QueryGuard* guard) {
  std::vector<Schema> out;
  out.reserve(inputs.size());
  for (const TermRef& in : inputs) {
    EDS_ASSIGN_OR_RETURN(Schema s, InferSchema(in, cat, env, memo, guard));
    out.push_back(std::move(s));
  }
  return out;
}

Result<Schema> ProjectionSchema(const term::TermList& projs,
                                const std::vector<Schema>& input_schemas,
                                const catalog::Catalog& cat,
                                const SchemaEnv* env) {
  Schema out;
  out.reserve(projs.size());
  for (const TermRef& p : projs) {
    EDS_ASSIGN_OR_RETURN(TypeRef t,
                         InferExprType(p, input_schemas, cat, nullptr, env));
    out.push_back(Field{ProjectionName(p, input_schemas), std::move(t)});
  }
  return out;
}

// Returns the element type of a collection, or TypeError.
Result<TypeRef> ElementType(const TypeRef& coll, const std::string& what) {
  if (coll == nullptr || !coll->is_collection()) {
    return Status::TypeError(what + ": expected a collection type, got " +
                             (coll == nullptr ? "?" : coll->ToString()));
  }
  if (coll->element() == nullptr) {
    return Status::TypeError(what + ": collection element type unknown");
  }
  return coll->element();
}

}  // namespace

namespace {

Result<Schema> InferSchemaImpl(const term::TermRef& t,
                               const catalog::Catalog& cat,
                               const SchemaEnv* env, SchemaMemo* memo,
                               gov::QueryGuard* guard) {
  if (IsRelation(t)) {
    EDS_ASSIGN_OR_RETURN(std::string name, RelationName(t));
    if (env != nullptr) {
      auto it = env->find(ToUpperAscii(name));
      if (it != env->end()) return it->second;
    }
    return cat.RelationSchema(name);
  }
  if (!t->is_apply()) {
    return Status::InvalidArgument("not a relational term: " + t->ToString());
  }
  const std::string& f = t->functor();
  if (f == kSearch) {
    EDS_ASSIGN_OR_RETURN(term::TermList inputs, SearchInputs(t));
    EDS_ASSIGN_OR_RETURN(auto schemas, InputSchemas(inputs, cat, env, memo, guard));
    EDS_ASSIGN_OR_RETURN(term::TermList projs, SearchProjections(t));
    return ProjectionSchema(projs, schemas, cat, env);
  }
  if (f == kUnion) {
    EDS_ASSIGN_OR_RETURN(term::TermList inputs, UnionInputs(t));
    if (inputs.empty()) return Status::InvalidArgument("empty UNION");
    return InferSchema(inputs[0], cat, env, memo, guard);
  }
  if (f == kDifference || f == kIntersect) {
    return InferSchema(t->arg(0), cat, env, memo, guard);
  }
  if (f == kFilter || f == kDedup) {
    return InferSchema(t->arg(0), cat, env, memo, guard);
  }
  if (f == kProject) {
    EDS_ASSIGN_OR_RETURN(Schema in, InferSchema(t->arg(0), cat, env, memo, guard));
    std::vector<Schema> schemas = {std::move(in)};
    if (!t->arg(1)->IsApply(term::kList)) {
      return Status::InvalidArgument("malformed PROJECT: " + t->ToString());
    }
    return ProjectionSchema(t->arg(1)->args(), schemas, cat, env);
  }
  if (f == kJoin) {
    EDS_ASSIGN_OR_RETURN(Schema a, InferSchema(t->arg(0), cat, env, memo, guard));
    EDS_ASSIGN_OR_RETURN(Schema b, InferSchema(t->arg(1), cat, env, memo, guard));
    a.insert(a.end(), b.begin(), b.end());
    return a;
  }
  if (f == kFix) {
    EDS_ASSIGN_OR_RETURN(std::string name, FixRelationName(t));
    // Prefer the declared schema (catalog or env); otherwise the body's.
    if (env != nullptr) {
      auto it = env->find(ToUpperAscii(name));
      if (it != env->end()) return it->second;
    }
    if (cat.HasView(name) || cat.HasTable(name)) {
      return cat.RelationSchema(name);
    }
    // Infer from the body, registering the recursive name lazily: take the
    // first UNION branch that does not reference `name`.
    EDS_ASSIGN_OR_RETURN(TermRef body, FixBody(t));
    if (IsUnion(body)) {
      EDS_ASSIGN_OR_RETURN(term::TermList branches, UnionInputs(body));
      for (const TermRef& b : branches) {
        Result<Schema> s = InferSchema(b, cat, env, memo, guard);
        if (s.ok()) return s;
      }
    }
    return Status::TypeError("cannot infer schema of FIX(" + name + ", ...)");
  }
  if (f == kNest) {
    EDS_ASSIGN_OR_RETURN(Schema in, InferSchema(t->arg(0), cat, env, memo, guard));
    if (!t->arg(1)->IsApply(term::kList) || !t->arg(2)->is_constant()) {
      return Status::InvalidArgument("malformed NEST: " + t->ToString());
    }
    std::vector<bool> nested(in.size(), false);
    std::vector<Field> nested_fields;
    for (const TermRef& c : t->arg(1)->args()) {
      if (!c->is_constant() ||
          c->constant().kind() != value::ValueKind::kInt) {
        return Status::InvalidArgument("NEST column must be an integer");
      }
      int64_t idx = c->constant().AsInt();
      if (idx < 1 || static_cast<size_t>(idx) > in.size()) {
        return Status::InvalidArgument("NEST column out of range");
      }
      nested[idx - 1] = true;
      nested_fields.push_back(in[idx - 1]);
    }
    if (nested_fields.empty()) {
      return Status::InvalidArgument("NEST with no nested columns");
    }
    Schema out;
    for (size_t i = 0; i < in.size(); ++i) {
      if (!nested[i]) out.push_back(in[i]);
    }
    TypeRef elem = nested_fields.size() == 1
                       ? nested_fields[0].type
                       : Type::MakeTuple(nested_fields);
    out.push_back(Field{t->arg(2)->constant().AsString(),
                        Type::MakeCollection(TypeKind::kSet, elem)});
    return out;
  }
  if (f == kUnnest) {
    EDS_ASSIGN_OR_RETURN(Schema in, InferSchema(t->arg(0), cat, env, memo, guard));
    if (!t->arg(1)->is_constant() ||
        t->arg(1)->constant().kind() != value::ValueKind::kInt) {
      return Status::InvalidArgument("malformed UNNEST: " + t->ToString());
    }
    int64_t idx = t->arg(1)->constant().AsInt();
    if (idx < 1 || static_cast<size_t>(idx) > in.size()) {
      return Status::InvalidArgument("UNNEST column out of range");
    }
    EDS_ASSIGN_OR_RETURN(TypeRef elem,
                         ElementType(in[idx - 1].type, "UNNEST"));
    Schema out;
    for (size_t i = 0; i < in.size(); ++i) {
      if (static_cast<int64_t>(i) == idx - 1) {
        if (elem->kind() == TypeKind::kTuple) {
          for (const Field& ef : elem->fields()) out.push_back(ef);
        } else {
          out.push_back(Field{in[i].name, elem});
        }
      } else {
        out.push_back(in[i]);
      }
    }
    return out;
  }
  return Status::InvalidArgument("not a relational operator: " + f);
}

}  // namespace

Result<Schema> InferSchema(const term::TermRef& t,
                           const catalog::Catalog& cat, const SchemaEnv* env,
                           SchemaMemo* memo, gov::QueryGuard* guard) {
  // Governor chokepoint: every recursion level funnels through here, so a
  // deadline or cancellation aborts a deep view-expansion promptly.
  if (guard != nullptr && guard->Check()) return guard->TripStatus();
  if (memo != nullptr) {
    auto it = memo->find(t.get());
    if (it != memo->end()) return it->second;
  }
  Result<Schema> r = InferSchemaImpl(t, cat, env, memo, guard);
  // Trip errors describe this run's budget, not the term; memoizing them
  // would poison the memo for retries with a fresh budget.
  if (memo != nullptr && (guard == nullptr || !guard->tripped())) {
    memo->emplace(t.get(), r);
  }
  return r;
}

namespace {

TypeRef ConstantType(const value::Value& v, const catalog::Catalog& cat) {
  switch (v.kind()) {
    case value::ValueKind::kBool: return cat.types().bool_type();
    case value::ValueKind::kInt: return cat.types().int_type();
    case value::ValueKind::kReal: return cat.types().real_type();
    case value::ValueKind::kString: return cat.types().char_type();
    default: return cat.types().any_type();
  }
}

bool IsComparisonOrLogical(const std::string& f) {
  return f == term::kEq || f == term::kNe || f == term::kLt ||
         f == term::kLe || f == term::kGt || f == term::kGe ||
         f == term::kAnd || f == term::kOr || f == term::kNot;
}

}  // namespace

namespace {

Result<types::TypeRef> InferExprTypeImpl(
    const term::TermRef& expr, const std::vector<Schema>& input_schemas,
    const catalog::Catalog& cat, const types::TypeRef& elem_type,
    const SchemaEnv* env, ExprTypeMemo* memo, uint64_t scope_key) {
  if (expr->is_constant()) return ConstantType(expr->constant(), cat);
  if (expr->is_variable() || expr->is_collection_variable()) {
    // Rule patterns reach here during speculative typing; unknown.
    return cat.types().any_type();
  }
  const std::string& f = expr->functor();
  if (IsAttr(expr)) {
    EDS_ASSIGN_OR_RETURN(AttrRef a, GetAttr(expr));
    if (a.input < 1 || static_cast<size_t>(a.input) > input_schemas.size()) {
      return Status::TypeError("ATTR input index out of range: " +
                               expr->ToString());
    }
    const Schema& s = input_schemas[a.input - 1];
    if (a.column < 1 || static_cast<size_t>(a.column) > s.size()) {
      return Status::TypeError("ATTR column index out of range: " +
                               expr->ToString());
    }
    return s[a.column - 1].type;
  }
  if (f == kElem && expr->arity() == 0) {
    if (elem_type == nullptr) {
      return Status::TypeError("ELEM() outside a quantifier body");
    }
    return elem_type;
  }
  if (f == kValueOf && expr->arity() == 1) {
    EDS_ASSIGN_OR_RETURN(
        TypeRef t, InferExprType(expr->arg(0), input_schemas, cat, elem_type,
                                 env));
    if (t->kind() != TypeKind::kObject) {
      return Status::TypeError("VALUE applied to non-object type " +
                               t->ToString());
    }
    // The value of an object is a tuple of its (inherited) fields; keep the
    // object type itself as the value's nominal type so FIELD still works.
    return t;
  }
  if (f == kField && expr->arity() == 2 && expr->arg(1)->is_constant()) {
    EDS_ASSIGN_OR_RETURN(
        TypeRef t, InferExprType(expr->arg(0), input_schemas, cat, elem_type,
                                 env));
    const std::string& field = expr->arg(1)->constant().AsString();
    const Field* found = t->FindField(field);
    if (found == nullptr) {
      return Status::TypeError("type " + t->ToString() + " has no attribute " +
                               field);
    }
    return found->type;
  }
  if ((f == kForAll || f == kExists) && expr->arity() == 2) {
    EDS_ASSIGN_OR_RETURN(
        TypeRef coll, InferExprType(expr->arg(0), input_schemas, cat,
                                    elem_type, env, memo, scope_key));
    EDS_ASSIGN_OR_RETURN(TypeRef elem, ElementType(coll, f));
    EDS_ASSIGN_OR_RETURN(
        TypeRef body,
        InferExprType(expr->arg(1), input_schemas, cat, elem, env, memo,
                      scope_key));
    if (body->kind() != TypeKind::kBool && body->kind() != TypeKind::kAny) {
      return Status::TypeError(f + " body must be boolean");
    }
    return cat.types().bool_type();
  }
  if (IsComparisonOrLogical(f)) {
    for (const TermRef& a : expr->args()) {
      EDS_RETURN_IF_ERROR(InferExprType(a, input_schemas, cat, elem_type,
                                        env, memo, scope_key)
                              .status());
    }
    return cat.types().bool_type();
  }
  if (f == "MEMBER" || f == "ISEMPTY" || f == "INCLUDE") {
    for (const TermRef& a : expr->args()) {
      EDS_RETURN_IF_ERROR(InferExprType(a, input_schemas, cat, elem_type,
                                        env, memo, scope_key)
                              .status());
    }
    return cat.types().bool_type();
  }
  if (f == "COUNT" || f == "LENGTH") return cat.types().int_type();
  if (f == "ADD" || f == "SUB" || f == "MUL" || f == "DIV" || f == "MOD" ||
      f == "NEG" || f == "ABS") {
    bool any_real = false;
    for (const TermRef& a : expr->args()) {
      EDS_ASSIGN_OR_RETURN(TypeRef t,
                           InferExprType(a, input_schemas, cat, elem_type,
                                         env, memo, scope_key));
      if (t->kind() == TypeKind::kReal || t->kind() == TypeKind::kNumeric) {
        any_real = true;
      }
    }
    return any_real ? cat.types().real_type() : cat.types().int_type();
  }
  if (f == "CONCAT" || f == "UPPER" || f == "LOWER") {
    return cat.types().char_type();
  }
  if (f == "UNION" || f == "INTERSECTION" || f == "DIFFERENCE" ||
      f == "INSERT" || f == "REMOVE" || f == "APPEND") {
    // Collection-in, collection-out of the first collection argument's type.
    size_t idx = (f == "INSERT" || f == "REMOVE") ? 1 : 0;
    if (expr->arity() <= idx) {
      return Status::TypeError(f + ": missing collection argument");
    }
    return InferExprType(expr->arg(idx), input_schemas, cat, elem_type, env,
                         memo, scope_key);
  }
  if (f == "MAKESET" || f == "MAKEBAG" || f == "MAKELIST" ||
      f == "MAKEARRAY") {
    TypeRef elem = cat.types().any_type();
    if (expr->arity() > 0) {
      EDS_ASSIGN_OR_RETURN(elem,
                           InferExprType(expr->arg(0), input_schemas, cat,
                                         elem_type, env, memo, scope_key));
    }
    TypeKind kind = f == "MAKESET"    ? TypeKind::kSet
                    : f == "MAKEBAG"  ? TypeKind::kBag
                    : f == "MAKELIST" ? TypeKind::kList
                                      : TypeKind::kArray;
    return Type::MakeCollection(kind, elem);
  }
  if (f == "TOSET" || f == "TOBAG" || f == "TOLIST") {
    if (expr->arity() != 1) return Status::TypeError(f + ": one argument");
    EDS_ASSIGN_OR_RETURN(
        TypeRef coll,
        InferExprType(expr->arg(0), input_schemas, cat, elem_type, env,
                      memo, scope_key));
    EDS_ASSIGN_OR_RETURN(TypeRef elem, ElementType(coll, f));
    TypeKind kind = f == "TOSET"   ? TypeKind::kSet
                    : f == "TOBAG" ? TypeKind::kBag
                                   : TypeKind::kList;
    return Type::MakeCollection(kind, elem);
  }
  if (f == "CHOICE" || f == "FIRST" || f == "LAST" || f == "NTH") {
    EDS_ASSIGN_OR_RETURN(
        TypeRef coll,
        InferExprType(expr->arg(0), input_schemas, cat, elem_type, env,
                      memo, scope_key));
    return ElementType(coll, f);
  }
  if (f == term::kTuple) {
    std::vector<Field> fields;
    for (size_t i = 0; i < expr->arity(); ++i) {
      EDS_ASSIGN_OR_RETURN(TypeRef t,
                           InferExprType(expr->arg(i), input_schemas, cat,
                                         elem_type, env, memo, scope_key));
      fields.push_back(Field{"F" + std::to_string(i + 1), std::move(t)});
    }
    return Type::MakeTuple(std::move(fields));
  }
  // User ADT function with a declared signature.
  if (const catalog::FunctionSig* sig = cat.FindFunctionSig(f)) {
    if (sig->params.size() != expr->arity()) {
      return Status::TypeError("function " + f + " expects " +
                               std::to_string(sig->params.size()) +
                               " arguments");
    }
    for (size_t i = 0; i < expr->arity(); ++i) {
      EDS_ASSIGN_OR_RETURN(TypeRef t,
                           InferExprType(expr->arg(i), input_schemas, cat,
                                         elem_type, env, memo, scope_key));
      if (!types::Isa(t, sig->params[i]) &&
          sig->params[i]->kind() != TypeKind::kAny &&
          t->kind() != TypeKind::kAny) {
        return Status::TypeError("argument " + std::to_string(i + 1) +
                                 " of " + f + ": expected " +
                                 sig->params[i]->ToString() + ", got " +
                                 t->ToString());
      }
    }
    return sig->result;
  }
  // A nested relational operator used as a scalar (e.g. a scalar subquery);
  // type it as a bag of its row tuples.
  if (IsRelationalOp(expr)) {
    EDS_ASSIGN_OR_RETURN(Schema s, InferSchema(expr, cat, env));
    TypeRef row = s.size() == 1 ? s[0].type : Type::MakeTuple(s);
    return Type::MakeCollection(TypeKind::kBag, row);
  }
  // Unknown function: stay permissive (ANY) so user extensions without
  // declared signatures still type-check; execution will catch real errors.
  return cat.types().any_type();
}

}  // namespace

Result<types::TypeRef> InferExprType(const term::TermRef& expr,
                                     const std::vector<Schema>& input_schemas,
                                     const catalog::Catalog& cat,
                                     const types::TypeRef& elem_type,
                                     const SchemaEnv* env, ExprTypeMemo* memo,
                                     uint64_t scope_key) {
  // Quantifier bodies are keyed out: their types depend on elem_type, which
  // the (node, scope) key does not carry. Constants and variables are
  // cheaper to re-derive than to look up.
  const bool memoizable =
      memo != nullptr && elem_type == nullptr && expr->is_apply();
  if (memoizable) {
    if (const ExprTypeMemo::Entry* hit = memo->Find(expr, scope_key)) {
      return hit->type;
    }
  }
  Result<types::TypeRef> r = InferExprTypeImpl(expr, input_schemas, cat,
                                               elem_type, env, memo,
                                               scope_key);
  if (memoizable) memo->Insert(expr, scope_key, r);
  return r;
}

std::string ProjectionName(const term::TermRef& expr,
                           const std::vector<Schema>& input_schemas) {
  if (IsAttr(expr)) {
    auto a = GetAttr(expr);
    if (a.ok() && a->input >= 1 &&
        static_cast<size_t>(a->input) <= input_schemas.size()) {
      const Schema& s = input_schemas[a->input - 1];
      if (a->column >= 1 && static_cast<size_t>(a->column) <= s.size()) {
        return s[a->column - 1].name;
      }
    }
    return "ATTR";
  }
  if (expr->IsApply(kField, 2) && expr->arg(1)->is_constant() &&
      expr->arg(1)->constant().kind() == value::ValueKind::kString) {
    return expr->arg(1)->constant().AsString();
  }
  if (expr->is_apply()) return expr->functor();
  return "EXPR";
}

}  // namespace eds::lera
