#include "lera/printer.h"

#include <sstream>

#include "lera/lera.h"

namespace eds::lera {

namespace {

void Indent(std::ostringstream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

void PrintPlan(std::ostringstream& os, const term::TermRef& t, int depth) {
  Indent(os, depth);
  if (IsRelation(t)) {
    os << "RELATION " << t->arg(0)->constant().AsString() << '\n';
    return;
  }
  if (!t->is_apply() || !IsRelationalOp(t)) {
    os << t << '\n';
    return;
  }
  const std::string& f = t->functor();
  if (f == kSearch) {
    os << "SEARCH [" << t->arg(1) << "]\n";
    Indent(os, depth + 1);
    os << "-> ";
    const auto& projs = t->arg(2)->args();
    for (size_t i = 0; i < projs.size(); ++i) {
      if (i > 0) os << ", ";
      os << projs[i];
    }
    os << '\n';
    for (const auto& in : t->arg(0)->args()) PrintPlan(os, in, depth + 1);
    return;
  }
  if (f == kUnion) {
    os << "UNION\n";
    for (const auto& in : t->arg(0)->args()) PrintPlan(os, in, depth + 1);
    return;
  }
  if (f == kDifference || f == kIntersect) {
    os << f << '\n';
    PrintPlan(os, t->arg(0), depth + 1);
    PrintPlan(os, t->arg(1), depth + 1);
    return;
  }
  if (f == kFilter) {
    os << "FILTER [" << t->arg(1) << "]\n";
    PrintPlan(os, t->arg(0), depth + 1);
    return;
  }
  if (f == kProject) {
    os << "PROJECT ";
    const auto& projs = t->arg(1)->args();
    for (size_t i = 0; i < projs.size(); ++i) {
      if (i > 0) os << ", ";
      os << projs[i];
    }
    os << '\n';
    PrintPlan(os, t->arg(0), depth + 1);
    return;
  }
  if (f == kJoin) {
    os << "JOIN [" << t->arg(2) << "]\n";
    PrintPlan(os, t->arg(0), depth + 1);
    PrintPlan(os, t->arg(1), depth + 1);
    return;
  }
  if (f == kFix) {
    os << "FIX " << t->arg(0)->arg(0)->constant().AsString() << '\n';
    PrintPlan(os, t->arg(1), depth + 1);
    return;
  }
  if (f == kNest) {
    os << "NEST cols=" << t->arg(1) << " as "
       << t->arg(2)->constant().AsString() << '\n';
    PrintPlan(os, t->arg(0), depth + 1);
    return;
  }
  if (f == kUnnest) {
    os << "UNNEST col=" << t->arg(1) << '\n';
    PrintPlan(os, t->arg(0), depth + 1);
    return;
  }
  if (f == kDedup) {
    os << "DEDUP\n";
    PrintPlan(os, t->arg(0), depth + 1);
    return;
  }
  os << t << '\n';
}

}  // namespace

std::string FormatPlan(const term::TermRef& t) {
  std::ostringstream os;
  PrintPlan(os, t, 0);
  return os.str();
}

}  // namespace eds::lera
