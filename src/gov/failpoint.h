#ifndef EDS_GOV_FAILPOINT_H_
#define EDS_GOV_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace eds::gov {

// Deterministic fault injection for the chaos suite (and for operators
// reproducing a production incident in a shell). A *site* is a string
// literal compiled into the code (`EDS_FAIL_POINT("rewrite.method.EVALUATE")`);
// arming a site makes that call return an injected error Status exactly
// where a real failure (OOM, bad metadata, a buggy extension method) would
// surface one. The full site catalog lives in docs/robustness.md.
//
// Activation:
//   * programmatically: FailPoints::Global().Configure("site=error,...")
//   * from the environment: EDS_FAILPOINTS="site=error@3" (read once, on
//     the first armed-check after process start)
//
// Spec grammar — comma-separated `site=action` pairs:
//   site=error      every hit at `site` fails
//   site=error@N    only the N-th hit (1-based) fails
//   site=once       only the first hit fails (alias for error@1)
//   site=off        disarm the site (hit counting continues)
//
// Cost when nothing is armed: EDS_FAIL_POINT is one relaxed atomic load and
// a predictable branch — no lock, no string work — so shipping builds keep
// the sites compiled in.
class FailPoints {
 public:
  // Per-site armed/fire_at/hit_count state; public so the spec parser can
  // build (name, Site) pairs without touching the registry.
  struct Site {
    bool armed = false;
    uint64_t fire_at = 0;  // 0 = every hit; else only the fire_at-th hit
    uint64_t hit_count = 0;
  };

  static FailPoints& Global();

  FailPoints() = default;
  FailPoints(const FailPoints&) = delete;
  FailPoints& operator=(const FailPoints&) = delete;

  // Parses `spec` (grammar above) and arms/disarms sites. Malformed specs
  // return InvalidArgument and leave the registry unchanged.
  Status Configure(const std::string& spec);

  // Disarms every site and forgets all hit counts.
  void Clear();

  // Clear() plus forgetting that EDS_FAILPOINTS was ever consulted, so a
  // test can exercise the env activation path. Not for production use.
  static void ResetForTesting();

  // The slow path behind EDS_FAIL_POINT: counts the hit and returns the
  // injected error when `site` is armed and due. Only reached while at
  // least one site is armed.
  Status Hit(const char* site);

  // Observed hit count for a site (0 when never hit while armed-checking
  // was active). Test introspection.
  uint64_t hits(const std::string& site);

  // One "site action hits=N" line per configured site, for \gov.
  std::string Describe();

  // True when any site is armed. First call reads EDS_FAILPOINTS.
  static bool AnyArmed() {
    int32_t n = armed_sites_.load(std::memory_order_relaxed);
    if (n < 0) return InitFromEnv();
    return n > 0;
  }

 private:
  static bool InitFromEnv();
  // Both require mu_ to be held (InitFromEnv applies the env spec under
  // the lock it already holds; the public Configure would self-deadlock).
  void ApplyLocked(const std::vector<std::pair<std::string, Site>>& parsed);
  void RecountArmedLocked();

  // Number of armed sites; -1 until the EDS_FAILPOINTS env var has been
  // consulted.
  static std::atomic<int32_t> armed_sites_;

  std::mutex mu_;
  std::map<std::string, Site> sites_;
};

// Injects a failure at a named site when armed; free when not (one relaxed
// load + branch). Usable in functions returning Status or Result<T>.
#define EDS_FAIL_POINT(site)                                          \
  do {                                                                \
    if (::eds::gov::FailPoints::AnyArmed()) {                         \
      ::eds::Status _eds_fp = ::eds::gov::FailPoints::Global().Hit(site); \
      if (!_eds_fp.ok()) return _eds_fp;                              \
    }                                                                 \
  } while (false)

}  // namespace eds::gov

#endif  // EDS_GOV_FAILPOINT_H_
