#include "gov/failpoint.h"

#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace eds::gov {

std::atomic<int32_t> FailPoints::armed_sites_{-1};

FailPoints& FailPoints::Global() {
  // Leaky, like the interner: failpoint checks may run during static
  // teardown of test fixtures.
  static FailPoints* global = new FailPoints();
  return *global;
}

namespace {

// One `site=action` pair -> (fire_at, armed) or an error.
Status ParseAction(const std::string& action, bool* armed,
                   uint64_t* fire_at) {
  *fire_at = 0;
  if (action == "off") {
    *armed = false;
    return Status::OK();
  }
  *armed = true;
  if (action == "error") return Status::OK();
  if (action == "once") {
    *fire_at = 1;
    return Status::OK();
  }
  if (StartsWith(action, "error@")) {
    const std::string n = action.substr(6);
    if (n.empty()) return Status::InvalidArgument("failpoint: empty error@N");
    uint64_t at = 0;
    for (char c : n) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("failpoint: bad count '" + n + "'");
      }
      at = at * 10 + static_cast<uint64_t>(c - '0');
    }
    if (at == 0) {
      return Status::InvalidArgument("failpoint: error@N needs N >= 1");
    }
    *fire_at = at;
    return Status::OK();
  }
  return Status::InvalidArgument("failpoint: unknown action '" + action +
                                 "' (want error, error@N, once, off)");
}

}  // namespace

namespace {

// Parses a full "site=action,site=action" spec into (name, site) pairs
// without touching the registry, so a malformed spec changes nothing.
Status ParseSpec(const std::string& spec,
                 std::vector<std::pair<std::string, FailPoints::Site>>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string pair(Trim(spec.substr(pos, end - pos)));
    pos = end + 1;
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint: expected site=action, got '" +
                                     pair + "'");
    }
    FailPoints::Site site;
    EDS_RETURN_IF_ERROR(ParseAction(pair.substr(eq + 1), &site.armed,
                                    &site.fire_at));
    out->emplace_back(pair.substr(0, eq), site);
  }
  return Status::OK();
}

}  // namespace

bool FailPoints::InitFromEnv() {
  FailPoints& g = Global();
  std::lock_guard<std::mutex> lock(g.mu_);
  // Another thread may have initialized while we waited for the lock.
  if (armed_sites_.load(std::memory_order_relaxed) >= 0) {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }
  armed_sites_.store(0, std::memory_order_relaxed);
  const char* env = std::getenv("EDS_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    // Env errors cannot surface to a caller; a bad spec simply arms
    // nothing. Apply under the lock we already hold — calling the public
    // Configure here would self-deadlock on mu_.
    std::vector<std::pair<std::string, Site>> parsed;
    if (ParseSpec(env, &parsed).ok()) g.ApplyLocked(parsed);
  }
  return armed_sites_.load(std::memory_order_relaxed) > 0;
}

Status FailPoints::Configure(const std::string& spec) {
  std::vector<std::pair<std::string, Site>> parsed;
  EDS_RETURN_IF_ERROR(ParseSpec(spec, &parsed));
  std::lock_guard<std::mutex> lock(mu_);
  ApplyLocked(parsed);
  return Status::OK();
}

void FailPoints::ApplyLocked(
    const std::vector<std::pair<std::string, Site>>& parsed) {
  for (const auto& [name, site] : parsed) {
    Site& s = sites_[name];
    s.armed = site.armed;
    s.fire_at = site.fire_at;
    // hit_count deliberately survives reconfiguration: error@N counts hits
    // from the moment any site first became armed, which tests rely on.
  }
  RecountArmedLocked();
}

void FailPoints::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  RecountArmedLocked();
}

void FailPoints::ResetForTesting() {
  FailPoints& g = Global();
  std::lock_guard<std::mutex> lock(g.mu_);
  g.sites_.clear();
  armed_sites_.store(-1, std::memory_order_relaxed);
}

void FailPoints::RecountArmedLocked() {
  int32_t n = 0;
  for (const auto& [name, site] : sites_) {
    if (site.armed) ++n;
  }
  armed_sites_.store(n, std::memory_order_relaxed);
}

Status FailPoints::Hit(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Unconfigured sites still count hits while any site is armed, so a
    // chaos run can discover which sites a workload actually crosses.
    ++sites_[site].hit_count;
    return Status::OK();
  }
  Site& s = it->second;
  ++s.hit_count;
  if (!s.armed) return Status::OK();
  if (s.fire_at != 0 && s.hit_count != s.fire_at) return Status::OK();
  return Status::RuntimeError(std::string("injected failure at failpoint ") +
                              site);
}

uint64_t FailPoints::hits(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::string FailPoints::Describe() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.empty()) return "(no failpoints configured)\n";
  std::string out;
  for (const auto& [name, site] : sites_) {
    out += name;
    out += site.armed
               ? (site.fire_at != 0
                      ? " error@" + std::to_string(site.fire_at)
                      : std::string(" error"))
               : std::string(" off");
    out += " hits=" + std::to_string(site.hit_count) + "\n";
  }
  return out;
}

}  // namespace eds::gov
