#ifndef EDS_GOV_GOVERNOR_H_
#define EDS_GOV_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace eds::gov {

// The query governor: wall-clock deadlines, resource ceilings, and
// cooperative cancellation for one query's trip through the pipeline
// (rewrite -> schema inference -> execution). The paper already treats
// rewriting as a budgeted process (block limits, §4.2/§7); the governor
// extends that discipline to the resources a production server actually
// runs out of — time, memory, and the operator's patience.
//
// The invariant the whole design serves: tripping a limit during *rewrite*
// must never make the answer wrong, only less optimized. The engine returns
// its best-so-far normal form (every applied rule is semantics-preserving,
// so any prefix of applications is a correct plan) with a TripReason;
// execution-side trips cannot degrade — half an answer is wrong — so they
// surface as Status::ResourceExhausted with partial statistics.
// docs/robustness.md covers the knobs and guarantees.

// Why a run was cut short.
enum class TripKind {
  kNone = 0,
  kDeadline,     // wall-clock deadline exceeded
  kNodeCeiling,  // term-node (interner growth) ceiling exceeded
  kRowCeiling,   // executor row/materialization ceiling exceeded
  kCancelled,    // external cancellation token fired
};

// Stable lowercase name: "deadline", "node_ceiling", "row_ceiling",
// "cancelled", "none".
const char* TripKindName(TripKind kind);

// Structured trip description carried in RewriteOutcome / QueryResult.
struct TripReason {
  TripKind kind = TripKind::kNone;
  std::string detail;  // observed value vs. configured limit

  bool tripped() const { return kind != TripKind::kNone; }
  // "deadline: 12ms elapsed, limit 10ms" or "none".
  std::string ToString() const;
};

// External cancellation: the owner (a server's RPC layer, a shell signal
// handler, a test) flips the token from any thread; the query observes it
// at the next chokepoint. Plain relaxed atomics — cancellation needs no
// ordering, only eventual visibility.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Configured ceilings; 0 (or null) means "unlimited" for each knob.
struct GovernorLimits {
  // Wall-clock budget for the whole guarded region, in milliseconds.
  uint64_t deadline_ms = 0;
  // Ceiling on *new* term nodes allocated (interner misses) since the guard
  // was armed — the rewriter's memory proxy: a runaway rule set manifests
  // as unbounded fresh-term construction long before anything else.
  uint64_t max_term_nodes = 0;
  // Ceiling on rows materialized across executor operator evaluations
  // (every operator's output counts, so intermediate blowups trip it, not
  // just large final results) — the executor's memory proxy.
  uint64_t max_rows = 0;
  // Cooperative cancellation; must outlive the guard. May be null.
  const CancelToken* cancel = nullptr;

  bool any() const {
    return deadline_ms != 0 || max_term_nodes != 0 || max_rows != 0 ||
           cancel != nullptr;
  }
};

// Process-wide trip tallies, exported as gov.* metrics (obs/metrics.h) and
// dumped by the shell's \gov. Cumulative across queries, like the
// interner's stats.
struct TripCounters {
  uint64_t deadline_trips = 0;
  uint64_t node_ceiling_trips = 0;
  uint64_t row_ceiling_trips = 0;
  uint64_t cancel_trips = 0;
};
TripCounters CumulativeTripCounters();
void ResetTripCountersForTesting();

// One query's guard: armed with limits at query start, checked at the
// pipeline's existing cheap chokepoints (rule-condition checks, operator
// and fixpoint-round boundaries, schema-inference entries). Trips are
// sticky: the first limit to fire wins and every later Check() keeps
// returning true, so all layers unwind to the degradation/error path.
//
// Cost discipline: an unarmed guard (or a null guard pointer, the default
// everywhere) costs one predictable branch per chokepoint. An armed guard
// checks cancellation every call (one relaxed load) but amortizes the
// expensive probes — the clock read and the interner-counter read — over
// kStride calls.
class QueryGuard {
 public:
  QueryGuard() = default;  // unarmed: Check() is a single branch
  explicit QueryGuard(const GovernorLimits& limits) { Arm(limits); }

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  // Records the start time and the interner baseline; no-op limits still
  // arm (an armed guard with no ceilings never trips).
  void Arm(const GovernorLimits& limits);

  bool armed() const { return armed_; }
  const GovernorLimits& limits() const { return limits_; }

  // Chokepoint check. True once the guard has tripped (sticky).
  bool Check() {
    if (!armed_) return false;
    if (trip_.kind != TripKind::kNone) return true;
    if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
      return TripCancelled();
    }
    if (++tick_ % kStride != 0) return false;
    return CheckExpensive();
  }

  // Row-ceiling accounting: `produced` rows were materialized by an
  // operator. Returns true when tripped (including already-tripped).
  bool AddRows(uint64_t produced);

  uint64_t rows_accounted() const { return rows_; }

  bool tripped() const { return trip_.tripped(); }
  const TripReason& trip() const { return trip_; }

  // The error execution-side callers return: ResourceExhausted carrying
  // the trip detail ("query governor: deadline: ...").
  Status TripStatus() const;

 private:
  // Probe every kStride checks: chokepoints fire thousands of times per
  // query, a clock read every call would be the most expensive thing at
  // the site. 64 keeps worst-case trip latency well under a millisecond.
  static constexpr uint32_t kStride = 64;

  bool CheckExpensive();  // clock + interner reads
  bool TripCancelled();
  bool Trip(TripKind kind, std::string detail);

  GovernorLimits limits_;
  bool armed_ = false;
  uint64_t start_ns_ = 0;
  uint64_t deadline_ns_ = 0;  // absolute, 0 when no deadline
  uint64_t node_base_ = 0;    // interner allocations at Arm()
  uint64_t rows_ = 0;
  uint32_t tick_ = 0;
  TripReason trip_;
};

}  // namespace eds::gov

#endif  // EDS_GOV_GOVERNOR_H_
