#include "gov/governor.h"

#include "obs/trace.h"
#include "term/interner.h"

namespace eds::gov {

const char* TripKindName(TripKind kind) {
  switch (kind) {
    case TripKind::kNone: return "none";
    case TripKind::kDeadline: return "deadline";
    case TripKind::kNodeCeiling: return "node_ceiling";
    case TripKind::kRowCeiling: return "row_ceiling";
    case TripKind::kCancelled: return "cancelled";
  }
  return "unknown";
}

std::string TripReason::ToString() const {
  if (kind == TripKind::kNone) return "none";
  std::string out = TripKindName(kind);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

namespace {

// Process-wide tallies; relaxed atomics, read by \gov and the metrics
// exporter the way interner stats are.
std::atomic<uint64_t> g_deadline_trips{0};
std::atomic<uint64_t> g_node_ceiling_trips{0};
std::atomic<uint64_t> g_row_ceiling_trips{0};
std::atomic<uint64_t> g_cancel_trips{0};

void CountTrip(TripKind kind) {
  switch (kind) {
    case TripKind::kDeadline:
      g_deadline_trips.fetch_add(1, std::memory_order_relaxed);
      break;
    case TripKind::kNodeCeiling:
      g_node_ceiling_trips.fetch_add(1, std::memory_order_relaxed);
      break;
    case TripKind::kRowCeiling:
      g_row_ceiling_trips.fetch_add(1, std::memory_order_relaxed);
      break;
    case TripKind::kCancelled:
      g_cancel_trips.fetch_add(1, std::memory_order_relaxed);
      break;
    case TripKind::kNone:
      break;
  }
}

}  // namespace

TripCounters CumulativeTripCounters() {
  TripCounters c;
  c.deadline_trips = g_deadline_trips.load(std::memory_order_relaxed);
  c.node_ceiling_trips = g_node_ceiling_trips.load(std::memory_order_relaxed);
  c.row_ceiling_trips = g_row_ceiling_trips.load(std::memory_order_relaxed);
  c.cancel_trips = g_cancel_trips.load(std::memory_order_relaxed);
  return c;
}

void ResetTripCountersForTesting() {
  g_deadline_trips.store(0, std::memory_order_relaxed);
  g_node_ceiling_trips.store(0, std::memory_order_relaxed);
  g_row_ceiling_trips.store(0, std::memory_order_relaxed);
  g_cancel_trips.store(0, std::memory_order_relaxed);
}

void QueryGuard::Arm(const GovernorLimits& limits) {
  limits_ = limits;
  armed_ = true;
  tick_ = 0;
  rows_ = 0;
  trip_ = TripReason{};
  start_ns_ = obs::NowNs();
  deadline_ns_ =
      limits_.deadline_ms != 0
          ? start_ns_ + limits_.deadline_ms * 1'000'000ULL
          : 0;
  node_base_ = limits_.max_term_nodes != 0
                   ? term::Interner::Global().ApproxAllocated()
                   : 0;
}

bool QueryGuard::Trip(TripKind kind, std::string detail) {
  // First trip wins; later limit crossings are symptoms of the first.
  if (trip_.kind == TripKind::kNone) {
    trip_.kind = kind;
    trip_.detail = std::move(detail);
    CountTrip(kind);
  }
  return true;
}

bool QueryGuard::TripCancelled() {
  return Trip(TripKind::kCancelled, "cancellation token fired");
}

bool QueryGuard::CheckExpensive() {
  if (deadline_ns_ != 0) {
    const uint64_t now = obs::NowNs();
    if (now >= deadline_ns_) {
      return Trip(TripKind::kDeadline,
                  std::to_string((now - start_ns_) / 1'000'000) +
                      "ms elapsed, limit " +
                      std::to_string(limits_.deadline_ms) + "ms");
    }
  }
  if (limits_.max_term_nodes != 0) {
    const uint64_t grown =
        term::Interner::Global().ApproxAllocated() - node_base_;
    if (grown > limits_.max_term_nodes) {
      return Trip(TripKind::kNodeCeiling,
                  std::to_string(grown) + " term nodes allocated, limit " +
                      std::to_string(limits_.max_term_nodes));
    }
  }
  return false;
}

bool QueryGuard::AddRows(uint64_t produced) {
  if (!armed_) return false;
  if (trip_.kind != TripKind::kNone) return true;
  rows_ += produced;
  if (limits_.max_rows != 0 && rows_ > limits_.max_rows) {
    return Trip(TripKind::kRowCeiling,
                std::to_string(rows_) + " rows materialized, limit " +
                    std::to_string(limits_.max_rows));
  }
  return false;
}

Status QueryGuard::TripStatus() const {
  if (!trip_.tripped()) return Status::OK();
  return Status::ResourceExhausted("query governor: " + trip_.ToString());
}

}  // namespace eds::gov
