#include "rules/permutation.h"

namespace eds::rules {

const char* PermutationRuleSource() {
  return R"DSL(
# --- operation permutation (Fig. 8) ----------------------------------------

# Search through union: decompose a search applied to a union of relations
# into a union of searches. One branch is peeled per application; the
# residual single-branch union collapses via union_collapse.
push_search_union :
  SEARCH(LIST(x*, UNION(SET(u, v, w*)), y*), f, a) /
  -->
  UNION(SET(
    SEARCH(APPEND(x*, LIST(u), y*), f, a),
    SEARCH(APPEND(x*, LIST(UNION(SET(v, w*))), y*), f, a))) / ;

# Search through nest: conjuncts that only touch non-nested attributes of
# the NEST input are pushed below it. SPLIT_QUAL fails when nothing is
# pushable, so the rule cannot fire vacuously; SCHEMA builds the identity
# projection of the pushed search.
push_search_nest :
  SEARCH(LIST(x*, NEST(z, nc, nm), y*), f, a) /
  -->
  SEARCH(LIST(x*, NEST(SEARCH(LIST(z), fi, p), nc, nm), y*), fj, a) /
  POSITION(x*, pos),
  SPLIT_QUAL(f, pos, z, nc, fi, fj),
  SCHEMA(z, p) ;
)DSL";
}

}  // namespace eds::rules
