#include "rules/merging.h"

namespace eds::rules {

const char* MergingRuleSource() {
  return R"DSL(
# --- normalization: basic operators fold into the compound SEARCH ---------

filter_to_search :
  FILTER(z, f) /
  --> SEARCH(LIST(z), f, p) /
  SCHEMA(z, p) ;

project_to_search :
  PROJECT(z, p) /
  --> SEARCH(LIST(z), TRUE, p) / ;

join_to_search :
  JOIN(a, b, f) /
  --> SEARCH(LIST(a, b), f, p) /
  SCHEMA(LIST(a, b), p) ;

# --- operation merging (Fig. 7) --------------------------------------------

# Two successive searches merge; qualifications are connected by AND after
# the substitute function remaps attribute references: outer references
# unfold through the inner projection b (MERGE_SUBST) and the inner
# qualification's references shift past the surviving outer inputs
# (SHIFT_ATTRS), since append(x*, v*, z) moves the inner inputs to the end.
search_merge :
  SEARCH(LIST(x*, SEARCH(z, g, b), v*), f, a) /
  -->
  SEARCH(APPEND(x*, v*, z), f2 AND g2, a2) /
  MERGE_SUBST(f, x*, v*, z, b, f2),
  MERGE_SUBST(a, x*, v*, z, b, a2),
  SHIFT_ATTRS(g, x*, v*, g2) ;

# Nested unions flatten (Fig. 7's union merging rule).
union_merge :
  UNION(SET(x*, UNION(z))) /
  -->
  UNION(SET_UNION(SET(x*), z)) / ;

# A union of a single relation is that relation.
union_collapse :
  UNION(SET(x)) /
  --> x / ;

# Duplicate-elimination identities: DEDUP is idempotent, and UNION already
# produces a set.
dedup_dedup :
  DEDUP(DEDUP(x)) /
  --> DEDUP(x) / ;

dedup_union :
  DEDUP(UNION(x)) /
  --> UNION(x) / ;

# A DEDUP inside a union branch is absorbed by the union's own duplicate
# elimination.
union_absorbs_dedup :
  UNION(SET(x*, DEDUP(z))) /
  --> UNION(SET(x*, z)) / ;
)DSL";
}

}  // namespace eds::rules
