#include "rules/fixpoint.h"

namespace eds::rules {

const char* FixpointRuleSource() {
  return R"DSL(
# --- fixpoint reduction (Fig. 9): the Alexander invocation rule ------------

# The qualification keeps its selection (the focused fixpoint already
# satisfies it; the residual filter is cheap and preserves correctness for
# multi-bound adornments where only one column was used for focusing).
push_search_fixpoint :
  SEARCH(LIST(x*, FIX(r, e), y*), f, a) /
  -->
  SEARCH(APPEND(x*, LIST(u), y*), f, a) /
  POSITION(x*, pos),
  ADORNMENT(f, pos, sig),
  ALEXANDER(r, e, sig, u) ;
)DSL";
}

}  // namespace eds::rules
