#include "rules/simplify.h"

namespace eds::rules {

const char* SimplifyRuleSource() {
  return R"DSL(
# --- predicate simplification (Fig. 12) ------------------------------------

# Boolean absorption.
and_true_r  : f AND TRUE  / --> f / ;
and_true_l  : TRUE AND f  / --> f / ;
and_false_r : f AND FALSE / --> FALSE / ;
and_false_l : FALSE AND f / --> FALSE / ;
or_true_r   : f OR TRUE   / --> TRUE / ;
or_true_l   : TRUE OR f   / --> TRUE / ;
or_false_r  : f OR FALSE  / --> f / ;
or_false_l  : FALSE OR f  / --> f / ;
not_true    : NOT(TRUE)   / --> FALSE / ;
not_false   : NOT(FALSE)  / --> TRUE / ;
not_not     : NOT(NOT(f)) / --> f / ;
and_idem    : f AND f     / --> f / ;
or_idem     : f OR f      / --> f / ;

# Self-comparisons (1991-style two-valued semantics; see docs on NULLs).
eq_self : x = x  / --> TRUE / ;
ne_self : x <> x / --> FALSE / ;
lt_self : x < x  / --> FALSE / ;
le_self : x <= x / --> TRUE / ;
gt_self : x > x  / --> FALSE / ;
ge_self : x >= x / --> TRUE / ;

# Adjacent contradictions (Fig. 12's x > y AND x <= y case and mirrors).
contra_gt_le : (x > y) AND (x <= y) / --> FALSE / ;
contra_le_gt : (x <= y) AND (x > y) / --> FALSE / ;
contra_lt_ge : (x < y) AND (x >= y) / --> FALSE / ;
contra_ge_lt : (x >= y) AND (x < y) / --> FALSE / ;
contra_eq_ne : (x = y) AND (x <> y) / --> FALSE / ;
contra_ne_eq : (x <> y) AND (x = y) / --> FALSE / ;

# x - y = 0 simplifies to x = y (Fig. 12).
sub_zero : (x - y) = 0 / --> x = y / ;

# Constant folding through EVALUATE (Fig. 12's last rule). The pseudo-type
# CONSTANT means "folds to a value"; the method fails on non-foldable
# applications, leaving the term untouched. Structural literal wrappers
# (LIST/SET/BAG/TUPLE) are excluded: folding them is only a representation
# change and would corrupt operator argument shapes.
eval_fold_1 :
  ?F(x) /
  ISA(?F(x), CONSTANT), NOT MEMBER(?F, LIST('LIST', 'SET', 'BAG', 'TUPLE'))
  --> c / EVALUATE(?F(x), c) ;

eval_fold_2 :
  ?F(x, y) /
  ISA(?F(x, y), CONSTANT), NOT MEMBER(?F, LIST('LIST', 'SET', 'BAG', 'TUPLE'))
  --> c / EVALUATE(?F(x, y), c) ;
)DSL";
}

}  // namespace eds::rules
