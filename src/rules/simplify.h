#ifndef EDS_RULES_SIMPLIFY_H_
#define EDS_RULES_SIMPLIFY_H_

namespace eds::rules {

// Predicate-simplification rules (§6.2, Fig. 12): boolean absorption,
// self-comparison folding, contradiction detection between adjacent
// conjuncts, x - y = 0 --> x = y, and constant folding through the
// EVALUATE method (applied to any unary/binary application that folds,
// exactly Fig. 12's F(x,y) / ISA(x, constant), ISA(y, constant) rule —
// generalized with the foldability pseudo-type CONSTANT on the whole
// application so nested constant expressions fold too).
//
// Detecting inconsistency of an arbitrary conjunction is NP-complete (§6.2);
// these rules catch the "simple inconsistencies" the paper targets, and the
// CLOSE_PREDICATES method (semantic.h) catches non-adjacent numeric ones.
const char* SimplifyRuleSource();

}  // namespace eds::rules

#endif  // EDS_RULES_SIMPLIFY_H_
