#ifndef EDS_RULES_PERMUTATION_H_
#define EDS_RULES_PERMUTATION_H_

namespace eds::rules {

// Operation-permutation rules (§5.2, Fig. 8): heuristics that propagate
// constraints toward base relations.
//
//   push_search_union   a SEARCH over an n-ary UNION input splits into a
//                       UNION of SEARCHes, one per branch (Fig. 8, first
//                       rule, generalized from binary to n-ary by peeling
//                       one branch per application; union_collapse from the
//                       merging library finishes the job)
//   push_search_nest    the pushable conjuncts of a SEARCH qualification
//                       move below a NEST input when they only touch
//                       non-nested attributes (Fig. 8, second rule; REFER
//                       and the substitute function are realized by
//                       SPLIT_QUAL, which also renumbers the columns)
const char* PermutationRuleSource();

}  // namespace eds::rules

#endif  // EDS_RULES_PERMUTATION_H_
