#ifndef EDS_RULES_FIXPOINT_H_
#define EDS_RULES_FIXPOINT_H_

namespace eds::rules {

// Fixpoint-reduction rule (§5.3, Fig. 9): pushes a selection before a
// recursion by invoking the Alexander/Magic-Sets method on the algebraic
// form. ADORNMENT derives the bound columns from the qualification;
// ALEXANDER builds the focused fixpoint (see magic/magic.h for the
// supported recursion shapes). When either method fails — no bound column,
// or an unsupported shape — the rule silently does not fire and the
// fixpoint is evaluated unfocused. Requires the magic builtins
// (magic::InstallMagicBuiltins).
const char* FixpointRuleSource();

}  // namespace eds::rules

#endif  // EDS_RULES_FIXPOINT_H_
