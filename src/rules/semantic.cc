#include "rules/semantic.h"

#include <algorithm>
#include <map>
#include <optional>

#include "term/substitution.h"
#include "term/term.h"

namespace eds::rules {

using term::Term;
using term::TermList;
using term::TermRef;

const char* ImplicitKnowledgeRuleSource() {
  return R"DSL(
# --- implicit semantic knowledge (Fig. 11) ---------------------------------

# (1) transitivity of operations
transitivity_eq :
  (x = y) AND (y = z) /
  NOT HAS_CONJUNCT((x = y) AND (y = z), x = z)
  --> ((x = y) AND (y = z)) AND (x = z) / ;

transitivity_include :
  INCLUDE(x, y) AND INCLUDE(y, z) /
  ISA(x, SET) AND ISA(y, SET) AND ISA(z, SET),
  NOT HAS_CONJUNCT(INCLUDE(x, y) AND INCLUDE(y, z), INCLUDE(x, z))
  --> (INCLUDE(x, y) AND INCLUDE(y, z)) AND INCLUDE(x, z) / ;

# (2) equality substitution: (x = y) AND p(x) implies p(y). The structural
# wrappers are excluded from ?P for the same reason as in eval_fold.
eq_subst_1 :
  (x = y) AND ?P(x) /
  NOT MEMBER(?P, LIST('LIST', 'SET', 'BAG', 'TUPLE')),
  NOT HAS_CONJUNCT((x = y) AND ?P(x), ?P(y))
  --> ((x = y) AND ?P(x)) AND ?P(y) / ;

eq_subst_2 :
  (x = y) AND ?P(x, w) /
  NOT MEMBER(?P, LIST('LIST', 'SET', 'BAG', 'TUPLE')),
  NOT HAS_CONJUNCT((x = y) AND ?P(x, w), ?P(y, w))
  --> ((x = y) AND ?P(x, w)) AND ?P(y, w) / ;
)DSL";
}

const char* SemanticMethodRuleSource() {
  return R"DSL(
# --- method-backed semantic rules (used by the default optimizer) ----------

close_predicates :
  SEARCH(i, f, p) /
  --> SEARCH(i, f2, p) /
  CLOSE_PREDICATES(f, f2) ;

simplify_qual :
  SEARCH(i, f, p) /
  --> SEARCH(i, f2, p) /
  SIMPLIFY_QUAL(f, f2) ;
)DSL";
}

std::string ConstraintRuleSource(const catalog::Catalog& cat) {
  std::string out;
  for (const catalog::ConstraintDef& c : cat.constraints()) {
    out += "# integrity constraint: " + c.name + "\n";
    out += c.rule_text;
    out += "\n";
  }
  return out;
}

namespace {

using rewrite::RewriteContext;

// ---- CLOSE_PREDICATES ----

// Normalized comparison atom over conjunct operands.
struct Atom {
  enum Kind { kEq, kNe, kLt, kLe } kind;
  TermRef a, b;
};

std::optional<Atom> NormalizeAtom(const TermRef& conj) {
  if (!conj->is_apply() || conj->arity() != 2) return std::nullopt;
  const std::string& f = conj->functor();
  if (f == term::kEq) return Atom{Atom::kEq, conj->arg(0), conj->arg(1)};
  if (f == term::kNe) return Atom{Atom::kNe, conj->arg(0), conj->arg(1)};
  if (f == term::kLt) return Atom{Atom::kLt, conj->arg(0), conj->arg(1)};
  if (f == term::kLe) return Atom{Atom::kLe, conj->arg(0), conj->arg(1)};
  if (f == term::kGt) return Atom{Atom::kLt, conj->arg(1), conj->arg(0)};
  if (f == term::kGe) return Atom{Atom::kLe, conj->arg(1), conj->arg(0)};
  return std::nullopt;
}

// Union-find over structural term keys.
class TermClasses {
 public:
  int Id(const TermRef& t) {
    std::string key = t->ToString();
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(parent_.size());
    ids_.emplace(std::move(key), id);
    parent_.push_back(id);
    terms_.push_back(t);
    return id;
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  size_t size() const { return parent_.size(); }
  const TermRef& term(int id) const { return terms_[static_cast<size_t>(id)]; }

 private:
  std::map<std::string, int> ids_;
  std::vector<int> parent_;
  std::vector<TermRef> terms_;
};

Status MethodClosePredicates(const TermList& args, term::Bindings* env,
                             const RewriteContext& ctx) {
  if (args.size() != 2 || !args[1]->is_variable()) {
    return Status::InvalidArgument("CLOSE_PREDICATES expects (f, out)");
  }
  EDS_ASSIGN_OR_RETURN(TermRef f, term::ApplySubstitution(args[0], *env));
  TermList conjuncts = term::Conjuncts(f);

  TermClasses classes;
  std::vector<Atom> atoms;
  for (const TermRef& c : conjuncts) {
    std::optional<Atom> a = NormalizeAtom(c);
    if (!a.has_value()) continue;
    classes.Id(a->a);
    classes.Id(a->b);
    atoms.push_back(*a);
  }
  // Equality closure.
  for (const Atom& a : atoms) {
    if (a.kind == Atom::kEq) {
      classes.Union(classes.Id(a.a), classes.Id(a.b));
    }
  }
  // Constant per class; two distinct constants = inconsistent.
  std::map<int, value::Value> constants;
  bool inconsistent = false;
  for (size_t i = 0; i < classes.size() && !inconsistent; ++i) {
    const TermRef& t = classes.term(static_cast<int>(i));
    std::optional<value::Value> v = rewrite::TryEvalToValue(t, ctx);
    if (!v.has_value()) continue;
    int rep = classes.Find(static_cast<int>(i));
    auto it = constants.find(rep);
    if (it == constants.end()) {
      constants.emplace(rep, *v);
    } else if (!(it->second == *v)) {
      inconsistent = true;
    }
  }
  // Comparison checks against the closure.
  for (const Atom& a : atoms) {
    if (inconsistent) break;
    int ra = classes.Find(classes.Id(a.a));
    int rb = classes.Find(classes.Id(a.b));
    if (a.kind == Atom::kNe && ra == rb) inconsistent = true;
    if (a.kind == Atom::kLt && ra == rb) inconsistent = true;
    auto ca = constants.find(ra);
    auto cb = constants.find(rb);
    if (ca != constants.end() && cb != constants.end()) {
      int cmp = value::Compare(ca->second, cb->second);
      if (a.kind == Atom::kLt && cmp >= 0) inconsistent = true;
      if (a.kind == Atom::kLe && cmp > 0) inconsistent = true;
      if (a.kind == Atom::kEq && cmp != 0) inconsistent = true;
      if (a.kind == Atom::kNe && cmp == 0) inconsistent = true;
    }
  }

  if (inconsistent) {
    if (f->is_constant()) {
      return Status::InvalidArgument("CLOSE_PREDICATES: already folded");
    }
    env->SetVar(args[1]->var_name(), Term::False());
    return Status::OK();
  }

  // Derive member = constant conjuncts (constant propagation): the payload
  // that enables adornments and pushdowns downstream.
  auto already_present = [&conjuncts](const TermRef& c) {
    for (const TermRef& existing : conjuncts) {
      if (term::Equals(existing, c)) return true;
      // x = c vs c = x.
      if (existing->IsApply(term::kEq, 2) && c->IsApply(term::kEq, 2) &&
          term::Equals(existing->arg(0), c->arg(1)) &&
          term::Equals(existing->arg(1), c->arg(0))) {
        return true;
      }
    }
    return false;
  };
  TermList derived;
  for (size_t i = 0; i < classes.size(); ++i) {
    int rep = classes.Find(static_cast<int>(i));
    auto it = constants.find(rep);
    if (it == constants.end()) continue;
    const TermRef& member = classes.term(static_cast<int>(i));
    if (rewrite::TryEvalToValue(member, ctx).has_value()) continue;
    TermRef conj =
        Term::Eq(member, rewrite::ValueToTerm(it->second));
    if (!already_present(conj)) derived.push_back(conj);
  }
  if (derived.empty()) {
    return Status::InvalidArgument("CLOSE_PREDICATES: nothing derivable");
  }
  TermList all = conjuncts;
  all.insert(all.end(), derived.begin(), derived.end());
  env->SetVar(args[1]->var_name(), term::MakeConjunction(all));
  return Status::OK();
}

// ---- SIMPLIFY_QUAL ----

Status MethodSimplifyQual(const TermList& args, term::Bindings* env,
                          const RewriteContext& ctx) {
  if (args.size() != 2 || !args[1]->is_variable()) {
    return Status::InvalidArgument("SIMPLIFY_QUAL expects (f, out)");
  }
  EDS_ASSIGN_OR_RETURN(TermRef f, term::ApplySubstitution(args[0], *env));
  TermList conjuncts = term::Conjuncts(f);
  TermList kept;
  bool changed = false;
  bool is_false = false;
  for (const TermRef& c : conjuncts) {
    TermRef conj = c;
    // Per-conjunct folding (whole-conjunct only; subexpression folding is
    // the eval_fold rules' job).
    std::optional<value::Value> v = rewrite::TryEvalToValue(conj, ctx);
    if (v.has_value() && v->kind() == value::ValueKind::kBool) {
      changed = changed || !conj->is_constant();
      if (!v->AsBool()) {
        is_false = true;
        break;
      }
      continue;  // drop TRUE conjuncts
    }
    // Structural dedup across the whole conjunction.
    bool duplicate = false;
    for (const TermRef& existing : kept) {
      if (term::Equals(existing, conj)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      changed = true;
      continue;
    }
    kept.push_back(conj);
  }
  if (is_false) {
    if (f->is_constant()) {
      return Status::InvalidArgument("SIMPLIFY_QUAL: already folded");
    }
    env->SetVar(args[1]->var_name(), Term::False());
    return Status::OK();
  }
  if (!changed) {
    return Status::InvalidArgument("SIMPLIFY_QUAL: nothing to simplify");
  }
  env->SetVar(args[1]->var_name(), term::MakeConjunction(kept));
  return Status::OK();
}

}  // namespace

void InstallSemanticBuiltins(rewrite::BuiltinRegistry* reg) {
  (void)reg->RegisterMethod("CLOSE_PREDICATES", MethodClosePredicates);
  (void)reg->RegisterMethod("SIMPLIFY_QUAL", MethodSimplifyQual);
}

}  // namespace eds::rules
