#include "rules/optimizer.h"

#include <map>

#include "common/strings.h"
#include "magic/magic.h"
#include "rules/fixpoint.h"
#include "rules/merging.h"
#include "rules/permutation.h"
#include "rules/semantic.h"
#include "rules/simplify.h"
#include "ruledsl/parser.h"

namespace eds::rules {

namespace {

// Parses `source`, validates the rules, and adds them to `by_name`.
Status LoadRules(const std::string& source,
                 const rewrite::BuiltinRegistry& builtins,
                 std::map<std::string, rewrite::Rule>* by_name) {
  EDS_ASSIGN_OR_RETURN(ruledsl::CompiledUnit unit,
                       ruledsl::ParseRuleSource(source));
  for (rewrite::Rule& r : unit.rules) {
    EDS_RETURN_IF_ERROR(rewrite::ValidateRule(r, builtins));
    std::string key = ToUpperAscii(r.name);
    if (by_name->count(key) > 0) {
      return Status::AlreadyExists("duplicate rule '" + r.name +
                                   "' in optimizer sources");
    }
    by_name->emplace(std::move(key), std::move(r));
  }
  return Status::OK();
}

Result<rewrite::RuleBlock> PickBlock(
    const std::string& block_name, const std::vector<const char*>& rule_names,
    int64_t limit, const std::map<std::string, rewrite::Rule>& by_name) {
  rewrite::RuleBlock block;
  block.name = block_name;
  block.limit = limit;
  for (const char* rn : rule_names) {
    auto it = by_name.find(ToUpperAscii(rn));
    if (it == by_name.end()) {
      return Status::Internal("optimizer block '" + block_name +
                              "' references missing rule '" + rn + "'");
    }
    block.rules.push_back(it->second);
  }
  return block;
}

}  // namespace

Result<std::unique_ptr<Optimizer>> MakeDefaultOptimizer(
    const catalog::Catalog* cat, const OptimizerOptions& options) {
  auto optimizer = std::unique_ptr<Optimizer>(new Optimizer());
  optimizer->builtins_.InstallStandard();
  magic::InstallMagicBuiltins(&optimizer->builtins_);
  InstallSemanticBuiltins(&optimizer->builtins_);

  std::map<std::string, rewrite::Rule> by_name;
  EDS_RETURN_IF_ERROR(
      LoadRules(MergingRuleSource(), optimizer->builtins_, &by_name));
  EDS_RETURN_IF_ERROR(
      LoadRules(PermutationRuleSource(), optimizer->builtins_, &by_name));
  EDS_RETURN_IF_ERROR(
      LoadRules(FixpointRuleSource(), optimizer->builtins_, &by_name));
  EDS_RETURN_IF_ERROR(
      LoadRules(SimplifyRuleSource(), optimizer->builtins_, &by_name));
  EDS_RETURN_IF_ERROR(
      LoadRules(SemanticMethodRuleSource(), optimizer->builtins_, &by_name));

  // The DBA's integrity constraints arrive as rule text in the catalog;
  // their names are collected for the semantic block.
  std::vector<std::string> constraint_rule_names;
  {
    std::map<std::string, rewrite::Rule> constraint_rules;
    EDS_RETURN_IF_ERROR(LoadRules(ConstraintRuleSource(*cat),
                                  optimizer->builtins_, &constraint_rules));
    for (auto& [key, rule] : constraint_rules) {
      constraint_rule_names.push_back(rule.name);
      by_name.emplace(key, std::move(rule));
    }
  }

  rewrite::RewriteProgram program;
  program.seq_limit = options.seq_limit;

  EDS_ASSIGN_OR_RETURN(
      rewrite::RuleBlock normalize,
      PickBlock("normalize",
                {"filter_to_search", "project_to_search", "join_to_search"},
                options.syntactic_limit, by_name));
  program.blocks.push_back(std::move(normalize));

  EDS_ASSIGN_OR_RETURN(
      rewrite::RuleBlock merge,
      PickBlock("merge",
                {"search_merge", "union_merge", "union_collapse",
                 "dedup_dedup", "dedup_union", "union_absorbs_dedup"},
                options.syntactic_limit, by_name));
  program.blocks.push_back(merge);  // copied: used again after push

  if (options.enable_semantic) {
    rewrite::RuleBlock semantic;
    semantic.name = "semantic";
    semantic.limit = options.semantic_limit;
    for (const std::string& rn : constraint_rule_names) {
      semantic.rules.push_back(by_name.at(ToUpperAscii(rn)));
    }
    semantic.rules.push_back(by_name.at(ToUpperAscii("close_predicates")));
    // Folding rules run inside the block so that added constraints collapse
    // immediately (consistent ones to TRUE, inconsistent ones to FALSE);
    // together with the engine's cycle guard this keeps constraint addition
    // self-limiting instead of burning the whole budget (§7).
    for (const char* rn :
         {"eval_fold_1", "eval_fold_2", "and_true_r", "and_true_l",
          "and_false_r", "and_false_l"}) {
      semantic.rules.push_back(by_name.at(ToUpperAscii(rn)));
    }
    program.blocks.push_back(std::move(semantic));
  }

  EDS_ASSIGN_OR_RETURN(
      rewrite::RuleBlock simplify,
      PickBlock("simplify",
                {"and_true_r", "and_true_l", "and_false_r", "and_false_l",
                 "or_true_r", "or_true_l", "or_false_r", "or_false_l",
                 "not_true", "not_false", "not_not", "and_idem", "or_idem",
                 "eq_self", "ne_self", "lt_self", "le_self", "gt_self",
                 "ge_self", "contra_gt_le", "contra_le_gt", "contra_lt_ge",
                 "contra_ge_lt", "contra_eq_ne", "contra_ne_eq", "sub_zero",
                 "eval_fold_1", "eval_fold_2", "simplify_qual"},
                options.syntactic_limit, by_name));
  program.blocks.push_back(std::move(simplify));

  std::vector<const char*> push_rules = {"push_search_union",
                                         "push_search_nest", "union_collapse"};
  if (options.enable_magic) push_rules.push_back("push_search_fixpoint");
  EDS_ASSIGN_OR_RETURN(rewrite::RuleBlock push,
                       PickBlock("push", push_rules, options.syntactic_limit,
                                 by_name));
  program.blocks.push_back(std::move(push));

  rewrite::RuleBlock merge_again = merge;
  merge_again.name = "merge_again";
  program.blocks.push_back(std::move(merge_again));

  optimizer->engine_ = std::make_unique<rewrite::Engine>(
      cat, &optimizer->builtins_, std::move(program));
  EDS_RETURN_IF_ERROR(optimizer->engine_->ValidateProgram());
  return optimizer;
}

}  // namespace eds::rules
