#ifndef EDS_RULES_OPTIMIZER_H_
#define EDS_RULES_OPTIMIZER_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "rewrite/builtins.h"
#include "rewrite/engine.h"

namespace eds::rules {

// Tuning knobs for the generated optimizer — the §4.2/§7 block-budget
// trade-off surface. The defaults reproduce the paper's recommended shape:
// syntactic blocks run to saturation; the semantic block (whose rules can
// grow qualifications) gets a finite budget.
struct OptimizerOptions {
  // Budget (condition checks) for the semantic block; rewrite::kSaturate
  // for saturation, 0 disables semantic optimization entirely ("simple
  // queries do not need sophisticated optimization: a 0 limit can then be
  // given", §7).
  int64_t semantic_limit = 512;
  // Budgets for the syntactic blocks; kSaturate by default.
  int64_t syntactic_limit = rewrite::kSaturate;
  // Passes over the whole block sequence.
  int64_t seq_limit = 2;
  // Include the Fig. 9 fixpoint-reduction (Alexander/Magic) rule.
  bool enable_magic = true;
  // Include the semantic block (catalog constraints + CLOSE_PREDICATES).
  bool enable_semantic = true;
};

// The generated optimizer: owns the builtin registry, the compiled program
// and the engine. Keep it alive while rewriting (the engine holds pointers
// into it and into the catalog).
class Optimizer {
 public:
  const rewrite::Engine& engine() const { return *engine_; }
  rewrite::BuiltinRegistry& builtins() { return builtins_; }

  // Rewrites a LERA query with default options.
  Result<rewrite::RewriteOutcome> Rewrite(
      const term::TermRef& query,
      const rewrite::RewriteOptions& options = {}) const {
    return engine_->Rewrite(query, options);
  }

 private:
  friend Result<std::unique_ptr<Optimizer>> MakeDefaultOptimizer(
      const catalog::Catalog* cat, const OptimizerOptions& options);
  Optimizer() = default;

  rewrite::BuiltinRegistry builtins_;
  std::unique_ptr<rewrite::Engine> engine_;
};

// Builds the standard optimizer pipeline over `cat` (which must outlive the
// result):
//
//   seq({normalize, merge, semantic, simplify, push, merge}, seq_limit)
//
//   normalize  filter/project/join fold into SEARCH            (saturate)
//   merge      search_merge, union_merge, union_collapse       (saturate)
//   semantic   catalog constraint rules + close_predicates     (budgeted)
//   simplify   Fig. 12 rules + simplify_qual                   (saturate)
//   push       push_search_union, push_search_nest,
//              push_search_fixpoint, union_collapse            (saturate)
//
// The second merge run re-merges the searches created by pushing — the
// paper's own observation that search merging "takes advantage of being
// applied more than once ... before and after pushing selections through
// fixpoints" (§5.3).
Result<std::unique_ptr<Optimizer>> MakeDefaultOptimizer(
    const catalog::Catalog* cat, const OptimizerOptions& options = {});

}  // namespace eds::rules

#endif  // EDS_RULES_OPTIMIZER_H_
