#ifndef EDS_RULES_MERGING_H_
#define EDS_RULES_MERGING_H_

namespace eds::rules {

// Operation-merging rules (§5.1, Fig. 7) plus the normalization rules that
// fold the basic operators into the compound SEARCH form, written in the
// rule DSL:
//
//   filter_to_search    FILTER(z, f)      -> SEARCH(LIST(z), f, identity)
//   project_to_search   PROJECT(z, p)     -> SEARCH(LIST(z), TRUE, p)
//   join_to_search      JOIN(a, b, f)     -> SEARCH(LIST(a, b), f, identity)
//   search_merge        two nested SEARCH -> one SEARCH (Fig. 7, with the
//                       substitute function realized by MERGE_SUBST)
//   union_merge         UNION(SET(x*, UNION(z))) -> UNION(set-union(x*, z))
//                       (Fig. 7)
//   union_collapse      UNION(SET(x))     -> x
//
// Returns the DSL source (rules only; callers assemble blocks).
const char* MergingRuleSource();

}  // namespace eds::rules

#endif  // EDS_RULES_MERGING_H_
