#include "rules/extensions.h"

namespace eds::rules {

const char* ExtensionRuleSource() {
  return R"DSL(
# --- extension rules (not part of the default optimizer) -------------------

# σ(A - B) = σ(A) - σ(B): conjuncts that only touch the DIFFERENCE input
# push into both sides. SPLIT_QUAL with an empty nested-column list treats
# every column as pushable and renumbers to the branch's own input space.
push_search_difference :
  SEARCH(LIST(x*, DIFFERENCE(a, b), y*), f, p) /
  -->
  SEARCH(LIST(x*, DIFFERENCE(SEARCH(LIST(a), fi, pa),
                             SEARCH(LIST(b), fi, pb)), y*), fj, p) /
  POSITION(x*, pos),
  SPLIT_QUAL(f, pos, a, LIST(), fi, fj),
  SCHEMA(a, pa),
  SCHEMA(b, pb) ;

# σ(A ∩ B) = σ(A) ∩ B: pushing into one side suffices for correctness and
# already shrinks the intersection's inputs.
push_search_intersect :
  SEARCH(LIST(x*, INTERSECT(a, b), y*), f, p) /
  -->
  SEARCH(LIST(x*, INTERSECT(SEARCH(LIST(a), fi, pa), b), y*), fj, p) /
  POSITION(x*, pos),
  SPLIT_QUAL(f, pos, a, LIST(), fi, fj),
  SCHEMA(a, pa) ;

# Disjunction splitting (set semantics: the UNION's duplicate elimination
# absorbs rows matching both disjuncts). Enables per-disjunct pushdown.
or_to_union :
  SEARCH(i, f OR g, p) /
  -->
  UNION(SET(SEARCH(i, f, p), SEARCH(i, g, p))) / ;

# σ(DEDUP(A)) = DEDUP(σ(A)): selections commute with duplicate
# elimination, so pushable conjuncts move below the DEDUP.
push_search_dedup :
  SEARCH(LIST(x*, DEDUP(z), y*), f, p) /
  -->
  SEARCH(LIST(x*, DEDUP(SEARCH(LIST(z), fi, pz)), y*), fj, p) /
  POSITION(x*, pos),
  SPLIT_QUAL(f, pos, z, LIST(), fi, fj),
  SCHEMA(z, pz) ;

# Trivial set-operation identities.
intersect_self : INTERSECT(x, x) / --> x / ;

difference_self :
  DIFFERENCE(x, x) /
  --> SEARCH(LIST(x), FALSE, p) /
  SCHEMA(x, p) ;
)DSL";
}

}  // namespace eds::rules
