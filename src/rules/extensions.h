#ifndef EDS_RULES_EXTENSIONS_H_
#define EDS_RULES_EXTENSIONS_H_

namespace eds::rules {

// Extension rules beyond the paper's figures — the kind of rule a database
// implementor adds to the knowledge base over time (§7: "very powerful
// rules can be added"). All are expressed in the same DSL:
//
//   push_search_difference   σ(A - B) = σ(A) - σ(B): a single-input search
//                            over a DIFFERENCE distributes to both sides
//                            (valid because the projection is identity on
//                            both; guarded by IDENTITY_PROJ)
//   push_search_intersect    σ(A ∩ B) = σ(A) ∩ B, pushed to the left side
//   or_to_union              SEARCH(i, f OR g, p) splits into a UNION of
//                            two searches (enables per-disjunct pushdown;
//                            set semantics absorb duplicates)
//   dedup_intersect_self     INTERSECT(x, x) -> x
//   dedup_difference_self    DIFFERENCE(x, x) -> empty search (FALSE qual)
//
// These are NOT in the default optimizer; MakeExtendedOptimizer-style
// programs opt in (see extension_rules_test and bench_extensions).
const char* ExtensionRuleSource();

}  // namespace eds::rules

#endif  // EDS_RULES_EXTENSIONS_H_
