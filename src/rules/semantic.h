#ifndef EDS_RULES_SEMANTIC_H_
#define EDS_RULES_SEMANTIC_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "rewrite/builtins.h"

namespace eds::rules {

// Implicit semantic knowledge (§6.1, Fig. 11), written in the rule DSL:
// transitivity of = and INCLUDE, and equality substitution, each guarded
// with HAS_CONJUNCT so the growth is locally idempotent. These demonstrate
// the paper's formulation; the default optimizer uses the bounded
// CLOSE_PREDICATES method below for the same inferences with global
// duplicate control.
const char* ImplicitKnowledgeRuleSource();

// DSL rules invoking the semantic methods on search qualifications:
//   close_predicates : SEARCH(i, f, p) --> SEARCH(i, f2, p) /
//                      CLOSE_PREDICATES(f, f2)
//   simplify_qual    : SEARCH(i, f, p) --> SEARCH(i, f2, p) /
//                      SIMPLIFY_QUAL(f, f2)
const char* SemanticMethodRuleSource();

// Concatenates the integrity-constraint rule texts declared in the catalog
// (§6.1, Fig. 10) into one DSL source unit. The DBA declares constraints in
// the same rule language the optimizer runs — exactly the paper's design.
std::string ConstraintRuleSource(const catalog::Catalog& cat);

// Registers the semantic methods:
//   CLOSE_PREDICATES(f, f2)  equality closure over f's conjuncts: constant
//       propagation through = chains (enabling adornments and pushdowns),
//       plus numeric/comparison inconsistency detection (f2 := FALSE).
//       Fails when it derives nothing, so the invoking rule is a no-op at
//       fixpoint.
//   SIMPLIFY_QUAL(f, f2)  per-conjunct constant folding, TRUE-dropping,
//       FALSE-absorption and structural deduplication across the whole
//       conjunction (non-adjacent duplicates, which the Fig. 12 DSL rules
//       cannot see). Fails when nothing changes.
void InstallSemanticBuiltins(rewrite::BuiltinRegistry* reg);

}  // namespace eds::rules

#endif  // EDS_RULES_SEMANTIC_H_
