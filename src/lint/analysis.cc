#include "lint/analysis.h"

#include <algorithm>

#include "lera/lera.h"
#include "rewrite/match.h"

namespace eds::lint {

namespace {

using term::TermList;
using term::TermRef;

bool IsFunctorVariable(const TermRef& t) {
  return t->is_apply() && !t->functor().empty() && t->functor().front() == '?';
}

bool IsTermFunction(const TermRef& t,
                    const rewrite::BuiltinRegistry& builtins) {
  return t->is_apply() && builtins.HasTermFunction(t->functor());
}

bool ContainsTermFunction(const TermRef& t,
                          const rewrite::BuiltinRegistry& builtins) {
  if (!t->is_apply()) return false;
  if (builtins.HasTermFunction(t->functor())) return true;
  for (const TermRef& a : t->args()) {
    if (ContainsTermFunction(a, builtins)) return true;
  }
  return false;
}

// Argument-sequence unification with collection variables on either side
// absorbing arbitrary subsequences (backtracking over split points).
bool MayUnifySeq(const TermList& a, size_t i, const TermList& b, size_t j,
                 const rewrite::BuiltinRegistry& builtins, UnifyMemo* memo) {
  if (i == a.size() && j == b.size()) return true;
  if (i < a.size() && a[i]->is_collection_variable()) {
    for (size_t k = j; k <= b.size(); ++k) {
      if (MayUnifySeq(a, i + 1, b, k, builtins, memo)) return true;
    }
    return false;
  }
  if (j < b.size() && b[j]->is_collection_variable()) {
    for (size_t k = i; k <= a.size(); ++k) {
      if (MayUnifySeq(a, k, b, j + 1, builtins, memo)) return true;
    }
    return false;
  }
  if (i == a.size() || j == b.size()) return false;
  return MayUnify(a[i], b[j], builtins, memo) &&
         MayUnifySeq(a, i + 1, b, j + 1, builtins, memo);
}

// SET patterns match modulo permutation; stay order-insensitive here. With a
// collection variable on either side anything pairs up, otherwise require
// equal sizes and every element to have a plausible partner on the other
// side (a necessary condition for a perfect matching, not a sufficient one —
// this predicate may only err toward `true`).
bool MayUnifySet(const TermList& a, const TermList& b,
                 const rewrite::BuiltinRegistry& builtins, UnifyMemo* memo) {
  auto has_coll = [](const TermList& xs) {
    return std::any_of(xs.begin(), xs.end(), [](const TermRef& x) {
      return x->is_collection_variable();
    });
  };
  if (has_coll(a) || has_coll(b)) return true;
  if (a.size() != b.size()) return false;
  for (const TermRef& x : a) {
    if (std::none_of(b.begin(), b.end(), [&](const TermRef& y) {
          return MayUnify(x, y, builtins, memo);
        })) {
      return false;
    }
  }
  for (const TermRef& y : b) {
    if (std::none_of(a.begin(), a.end(), [&](const TermRef& x) {
          return MayUnify(x, y, builtins, memo);
        })) {
      return false;
    }
  }
  return true;
}

}  // namespace

size_t PatternWeight(const term::TermRef& t) {
  switch (t->kind()) {
    case term::TermKind::kConstant:
    case term::TermKind::kVariable:
      return 1;
    case term::TermKind::kCollectionVariable:
      return 0;
    case term::TermKind::kApply: {
      size_t w = 1;
      for (const TermRef& a : t->args()) w += PatternWeight(a);
      return w;
    }
  }
  return 1;
}

void CountVarOccurrences(const term::TermRef& t,
                         std::map<std::string, size_t>* vars,
                         std::map<std::string, size_t>* coll_vars) {
  if (t->is_variable()) {
    if (vars != nullptr) ++(*vars)[t->var_name()];
    return;
  }
  if (t->is_collection_variable()) {
    if (coll_vars != nullptr) ++(*coll_vars)[t->var_name()];
    return;
  }
  if (t->is_apply()) {
    for (const TermRef& a : t->args()) CountVarOccurrences(a, vars, coll_vars);
  }
}

bool IsSizeDecreasing(const rewrite::Rule& rule,
                      const rewrite::BuiltinRegistry& builtins) {
  if (rule.lhs == nullptr || rule.rhs == nullptr) return false;
  if (ContainsTermFunction(rule.rhs, builtins)) return false;

  std::map<std::string, size_t> lhs_vars, lhs_coll, rhs_vars, rhs_coll;
  CountVarOccurrences(rule.lhs, &lhs_vars, &lhs_coll);
  CountVarOccurrences(rule.rhs, &rhs_vars, &rhs_coll);
  for (const auto& [name, n] : rhs_vars) {
    auto it = lhs_vars.find(name);
    // Method outputs (absent from the lhs) have unbounded size.
    if (it == lhs_vars.end() || n > it->second) return false;
  }
  for (const auto& [name, n] : rhs_coll) {
    auto it = lhs_coll.find(name);
    if (it == lhs_coll.end() || n > it->second) return false;
  }
  return PatternWeight(rule.rhs) < PatternWeight(rule.lhs);
}

bool MayUnify(const term::TermRef& a, const term::TermRef& b,
              const rewrite::BuiltinRegistry& builtins, UnifyMemo* memo) {
  // Hash-consing makes pointer identity structural identity: the same node
  // trivially unifies with itself.
  if (a.get() == b.get()) return true;
  if (a->is_variable() || a->is_collection_variable()) return true;
  if (b->is_variable() || b->is_collection_variable()) return true;
  // A term function's result has no predictable shape: assume it can be
  // anything (APPEND splices into a LIST, but custom ones are opaque).
  if (IsTermFunction(a, builtins) || IsTermFunction(b, builtins)) return true;
  if (a->is_constant() && b->is_constant()) return term::Equals(a, b);
  if (a->is_constant() || b->is_constant()) return false;

  // Both applications — the only recursive (expensive) case; memoized.
  if (memo != nullptr) {
    if (std::optional<bool> hit = memo->FindUnify(a.get(), b.get())) {
      return *hit;
    }
  }
  bool out;
  const bool wild = IsFunctorVariable(a) || IsFunctorVariable(b);
  if (!wild && a->functor() != b->functor()) {
    out = false;
  } else if (!wild && a->functor() == term::kSet) {
    out = MayUnifySet(a->args(), b->args(), builtins, memo);
  } else {
    out = MayUnifySeq(a->args(), 0, b->args(), 0, builtins, memo);
  }
  if (memo != nullptr) memo->InsertUnify(a.get(), b.get(), out);
  return out;
}

bool ProducesMatchFor(const term::TermRef& rhs, const term::TermRef& lhs,
                      const rewrite::BuiltinRegistry& builtins,
                      UnifyMemo* memo) {
  // Bare (collection) variables are copied input, not constructed output.
  if (rhs->is_variable() || rhs->is_collection_variable()) return false;
  if (memo != nullptr && rhs->is_apply()) {
    if (std::optional<bool> hit = memo->FindProduces(rhs.get(), lhs.get())) {
      return *hit;
    }
  }
  bool out = MayUnify(rhs, lhs, builtins, memo);
  if (!out && rhs->is_apply()) {
    for (const TermRef& a : rhs->args()) {
      if (ProducesMatchFor(a, lhs, builtins, memo)) {
        out = true;
        break;
      }
    }
  }
  if (memo != nullptr && rhs->is_apply()) {
    memo->InsertProduces(rhs.get(), lhs.get(), out);
  }
  return out;
}

bool Subsumes(const term::TermRef& general, const term::TermRef& specific) {
  // Match treats the subject as opaque structure: the specific pattern's own
  // variables only unify with (consistently bound) general-pattern
  // variables, which is exactly first-order subsumption.
  return rewrite::Match(general, specific, term::Bindings(),
                        [](const term::Bindings&) { return true; });
}

std::optional<size_t> KnownConstructorArity(const std::string& functor) {
  static const std::map<std::string, size_t>* kArities = [] {
    auto* m = new std::map<std::string, size_t>{
        {lera::kSearch, 3},     {lera::kUnion, 1},   {lera::kDifference, 2},
        {lera::kIntersect, 2},  {lera::kFilter, 2},  {lera::kProject, 2},
        {lera::kJoin, 3},       {lera::kFix, 2},     {lera::kNest, 3},
        {lera::kUnnest, 2},     {lera::kDedup, 1},   {lera::kField, 2},
        {lera::kValueOf, 1},    {lera::kForAll, 2},  {lera::kExists, 2},
        {lera::kElem, 0},       {term::kRelation, 1}, {term::kAttr, 2},
        {term::kAnd, 2},        {term::kOr, 2},      {term::kNot, 1},
        {term::kEq, 2},         {term::kNe, 2},      {term::kLt, 2},
        {term::kLe, 2},         {term::kGt, 2},      {term::kGe, 2},
        {"ADD", 2},             {"SUB", 2},          {"MUL", 2},
        {"DIV", 2},
    };
    return m;
  }();
  auto it = kArities->find(functor);
  if (it == kArities->end()) return std::nullopt;
  return it->second;
}

const std::vector<std::string>& QueryConstructors() {
  static const std::vector<std::string>* kNames = [] {
    auto* v = new std::vector<std::string>{
        lera::kSearch,    lera::kUnion,  lera::kDifference, lera::kIntersect,
        lera::kFilter,    lera::kProject, lera::kJoin,      lera::kFix,
        lera::kNest,      lera::kUnnest, lera::kDedup,      lera::kField,
        lera::kValueOf,   lera::kForAll, lera::kExists,     lera::kElem,
        term::kRelation,  term::kAttr,   term::kAnd,        term::kOr,
        term::kNot,       term::kEq,     term::kNe,         term::kLt,
        term::kLe,        term::kGt,     term::kGe,         term::kList,
        term::kSet,       term::kTuple,  "BAG",             "ADD",
        "SUB",            "MUL",         "DIV",
    };
    return v;
  }();
  return *kNames;
}

namespace {

// Tarjan's strongly-connected-components, recursive (rule blocks are small).
struct TarjanState {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int counter = 0;

  explicit TarjanState(const std::vector<std::vector<int>>& a)
      : adj(a),
        index(a.size(), -1),
        lowlink(a.size(), 0),
        on_stack(a.size(), false) {}

  void Visit(int v) {
    index[v] = lowlink[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    for (int w : adj[static_cast<size_t>(v)]) {
      if (index[static_cast<size_t>(w)] < 0) {
        Visit(w);
        lowlink[v] = std::min(lowlink[v], lowlink[static_cast<size_t>(w)]);
      } else if (on_stack[static_cast<size_t>(w)]) {
        lowlink[v] = std::min(lowlink[v], index[static_cast<size_t>(w)]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<int> component;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[static_cast<size_t>(w)] = false;
        component.push_back(w);
      } while (w != v);
      std::sort(component.begin(), component.end());
      components.push_back(std::move(component));
    }
  }
};

}  // namespace

std::vector<std::vector<int>> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency) {
  TarjanState state(adjacency);
  for (int v = 0; v < static_cast<int>(adjacency.size()); ++v) {
    if (state.index[static_cast<size_t>(v)] < 0) state.Visit(v);
  }
  return state.components;
}

}  // namespace eds::lint
