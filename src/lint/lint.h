#ifndef EDS_LINT_LINT_H_
#define EDS_LINT_LINT_H_

#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "lint/diagnostic.h"
#include "rewrite/builtins.h"
#include "rewrite/engine.h"
#include "ruledsl/parser.h"

namespace eds::lint {

// Whole-program static analysis for compiled rule programs (the layer the
// paper leaves to the DBA's discipline): saturation blocks silently diverge
// or waste budget when a user-authored rule set contains a rewrite cycle, a
// shadowed rule, or a rule that can never match a LERA term. The passes:
//
//   divergence   (EDS-L010)  per saturation block, build the rule-
//                            interaction graph (may rule A's right term
//                            re-enable rule B's left term?) and warn on
//                            cycles where no rule provably shrinks the term;
//   dead rules   (EDS-L011)  rules no declared block references (silently
//                            dropped by CompileProgram);
//                (EDS-L012)  left-term root functors nothing can produce —
//                            no LERA constructor, scalar function, or rule
//                            right term builds them;
//                (EDS-L013)  patterns that over-fill a fixed-arity
//                            constructor and so can never match;
//   shadowing    (EDS-L020)  an earlier rule in the same block whose left
//                            term is at least as general and which fires
//                            unconditionally, so the later rule never runs;
//   hygiene      (EDS-L030)  constraints that can never hold (literal
//                            FALSE, ISA on disjoint collection kinds or
//                            unknown / incompatible catalog types);
//                (EDS-L031)  method outputs nothing reads;
//                (EDS-L032)  collection variables that can only match the
//                            empty sequence;
//                (EDS-L033)  right terms building a known constructor with
//                            the wrong argument count.
//
// All passes are conservative: errors mean "this can never work as
// written", warnings mean "this looks wrong but may be intended".

struct LintOptions {
  // Enables ISA type-existence and type-compatibility checks, and extends
  // the producible-functor universe with the catalog's scalar functions.
  const catalog::Catalog* catalog = nullptr;
  // Extra producible root functors (custom operators introduced outside the
  // rule program), exempted from EDS-L012.
  std::vector<std::string> extra_constructors;
  bool check_divergence = true;
  bool check_dead_rules = true;
  bool check_shadowing = true;
  bool check_hygiene = true;
};

// Emits an EDS-L011 warning for every rule in `unit` that declared blocks
// exist but none references (CompileProgram drops these silently). No-op
// when the unit declares no blocks (all rules then form the implicit
// default block).
void ReportUnreferencedRules(const ruledsl::CompiledUnit& unit,
                             LintReport* report);

// Runs the analysis passes (divergence / dead / shadowing / hygiene) over a
// parsed unit. Rules are assumed individually valid (ValidateRule): run
// LintUnit instead when that is not established. Does not re-report
// unreferenced rules; pair with ReportUnreferencedRules for the full set.
void AnalyzeUnit(const ruledsl::CompiledUnit& unit,
                 const rewrite::BuiltinRegistry& builtins,
                 const LintOptions& opts, LintReport* report);

// Same analysis passes over an already-compiled program (rules built in
// C++, or post-CompileProgram). Unreferenced-rule information is gone at
// this layer; source locations are whatever the rules carry.
void AnalyzeProgram(const rewrite::RewriteProgram& program,
                    const rewrite::BuiltinRegistry& builtins,
                    const LintOptions& opts, LintReport* report);

// Full standalone lint of a parsed unit: per-rule validation (EDS-L001),
// duplicate names (EDS-L002), block/seq name resolution (EDS-L003),
// unreferenced rules (EDS-L011) and the analysis passes. Invalid rules are
// excluded from the analysis passes instead of aborting the lint.
LintReport LintUnit(const ruledsl::CompiledUnit& unit,
                    const rewrite::BuiltinRegistry& builtins,
                    const LintOptions& opts = {});

// Parse + LintUnit. A parse failure yields a single EDS-L000 error
// diagnostic (located when the parser reports an offset) instead of a
// Status, so callers can treat "file does not lint" uniformly.
LintReport LintSource(std::string_view text,
                      const rewrite::BuiltinRegistry& builtins,
                      const LintOptions& opts = {});

}  // namespace eds::lint

#endif  // EDS_LINT_LINT_H_
