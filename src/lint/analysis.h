#ifndef EDS_LINT_ANALYSIS_H_
#define EDS_LINT_ANALYSIS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rewrite/builtins.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace eds::lint {

// Term-level machinery behind the lint passes. Everything here is a static
// *approximation*: pattern instantiation, method outputs and term functions
// (APPEND, SET_UNION) make exact answers undecidable, so each predicate
// documents which direction it errs in.

// Static weight of a pattern: applies and constants count 1 each, variables
// count 1 (their binding is at least one node), collection variables count 0
// (they may bind the empty sequence).
size_t PatternWeight(const term::TermRef& t);

// Occurrence counts per variable name (separately for ordinary and
// collection variables), NOT deduplicated — F(x, x) counts x twice.
void CountVarOccurrences(const term::TermRef& t,
                         std::map<std::string, size_t>* vars,
                         std::map<std::string, size_t>* coll_vars);

// True when every application of `rule` strictly shrinks the term, for any
// match. Sufficient conditions: the rhs uses only lhs-bound variables (no
// method outputs), no variable occurs more often on the right than on the
// left, the rhs contains no registered term function (splicing makes sizes
// unpredictable), and PatternWeight(rhs) < PatternWeight(lhs). Errs toward
// `false`: a `true` answer is a proof, a `false` answer is "unknown".
bool IsSizeDecreasing(const rewrite::Rule& rule,
                      const rewrite::BuiltinRegistry& builtins);

// Verdict cache for the conservative unification predicates. Terms are
// hash-consed (pointer identity is structural identity for live nodes) and
// both predicates are stateless for a fixed builtin registry, so a verdict
// keyed on the node-pointer pair never goes stale. CheckDivergence's n²
// rule-interaction loop asks the same subterm pairs over and over — shared
// subtrees across rules are literally the same node — and the memo turns
// the repeats into one lookup over the cached structural hashes. Use one
// memo per builtin registry; reusing it across registries mixes verdicts.
class UnifyMemo {
 public:
  // nullopt when the pair has no recorded verdict yet.
  std::optional<bool> FindUnify(const term::Term* a,
                                const term::Term* b) const {
    return Find(unify_, a, b);
  }
  void InsertUnify(const term::Term* a, const term::Term* b, bool v) {
    unify_.emplace(std::make_pair(a, b), v);
  }
  std::optional<bool> FindProduces(const term::Term* rhs,
                                   const term::Term* lhs) const {
    return Find(produces_, rhs, lhs);
  }
  void InsertProduces(const term::Term* rhs, const term::Term* lhs, bool v) {
    produces_.emplace(std::make_pair(rhs, lhs), v);
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t size() const { return unify_.size() + produces_.size(); }

 private:
  struct PairHash {
    size_t operator()(
        const std::pair<const term::Term*, const term::Term*>& p) const {
      // The cached structural hashes double as the bucket hash; key
      // equality stays pointer equality.
      uint64_t h = p.first->structural_hash() * 0x9e3779b97f4a7c15ull;
      h ^= p.second->structural_hash() + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  using Map = std::unordered_map<
      std::pair<const term::Term*, const term::Term*>, bool, PairHash>;

  std::optional<bool> Find(const Map& map, const term::Term* a,
                           const term::Term* b) const {
    auto it = map.find(std::make_pair(a, b));
    if (it == map.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  Map unify_;
  Map produces_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

// Conservative unifiability of two patterns (both sides may contain
// variables). No binding consistency is tracked and term-function / functor-
// variable applications unify with anything, so this errs toward `true`:
// a `false` answer proves the patterns can never denote the same term.
// `memo` (optional) caches apply/apply verdicts across calls.
bool MayUnify(const term::TermRef& a, const term::TermRef& b,
              const rewrite::BuiltinRegistry& builtins,
              UnifyMemo* memo = nullptr);

// True when instantiating `rhs` may create a subterm that `lhs` matches:
// some non-variable subterm of `rhs` may unify with `lhs`. Bare variable /
// collection-variable subterms are skipped — they are copied input, not
// constructed output, and the engine already visited them. `memo`
// (optional) caches verdicts across calls.
bool ProducesMatchFor(const term::TermRef& rhs, const term::TermRef& lhs,
                      const rewrite::BuiltinRegistry& builtins,
                      UnifyMemo* memo = nullptr);

// Pattern subsumption: every term `specific` matches is also matched by
// `general` (specific's variables are treated as opaque constants; binding
// consistency is respected). Exact for the supported pattern language.
bool Subsumes(const term::TermRef& general, const term::TermRef& specific);

// Fixed arities of the LERA operators and scalar expression functors a
// query term can contain (SEARCH -> 3, FIX -> 2, ...). Variadic structural
// functors (LIST, SET, BAG, TUPLE) are deliberately absent. Returns nullopt
// for unknown functors.
std::optional<size_t> KnownConstructorArity(const std::string& functor);

// The functors query terms can be built from: LERA operators plus the
// scalar expression functors (AND, EQ, ATTR, ...). Used as the base of the
// dead-rule "producible functor" universe.
const std::vector<std::string>& QueryConstructors();

// Strongly connected components of a digraph over nodes 0..n-1 (Tarjan).
// Returned in reverse topological order; single nodes form an SCC only
// with themselves (check self-loops separately).
std::vector<std::vector<int>> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency);

}  // namespace eds::lint

#endif  // EDS_LINT_ANALYSIS_H_
