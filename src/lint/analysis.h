#ifndef EDS_LINT_ANALYSIS_H_
#define EDS_LINT_ANALYSIS_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "rewrite/builtins.h"
#include "rewrite/rule.h"
#include "term/term.h"

namespace eds::lint {

// Term-level machinery behind the lint passes. Everything here is a static
// *approximation*: pattern instantiation, method outputs and term functions
// (APPEND, SET_UNION) make exact answers undecidable, so each predicate
// documents which direction it errs in.

// Static weight of a pattern: applies and constants count 1 each, variables
// count 1 (their binding is at least one node), collection variables count 0
// (they may bind the empty sequence).
size_t PatternWeight(const term::TermRef& t);

// Occurrence counts per variable name (separately for ordinary and
// collection variables), NOT deduplicated — F(x, x) counts x twice.
void CountVarOccurrences(const term::TermRef& t,
                         std::map<std::string, size_t>* vars,
                         std::map<std::string, size_t>* coll_vars);

// True when every application of `rule` strictly shrinks the term, for any
// match. Sufficient conditions: the rhs uses only lhs-bound variables (no
// method outputs), no variable occurs more often on the right than on the
// left, the rhs contains no registered term function (splicing makes sizes
// unpredictable), and PatternWeight(rhs) < PatternWeight(lhs). Errs toward
// `false`: a `true` answer is a proof, a `false` answer is "unknown".
bool IsSizeDecreasing(const rewrite::Rule& rule,
                      const rewrite::BuiltinRegistry& builtins);

// Conservative unifiability of two patterns (both sides may contain
// variables). No binding consistency is tracked and term-function / functor-
// variable applications unify with anything, so this errs toward `true`:
// a `false` answer proves the patterns can never denote the same term.
bool MayUnify(const term::TermRef& a, const term::TermRef& b,
              const rewrite::BuiltinRegistry& builtins);

// True when instantiating `rhs` may create a subterm that `lhs` matches:
// some non-variable subterm of `rhs` may unify with `lhs`. Bare variable /
// collection-variable subterms are skipped — they are copied input, not
// constructed output, and the engine already visited them.
bool ProducesMatchFor(const term::TermRef& rhs, const term::TermRef& lhs,
                      const rewrite::BuiltinRegistry& builtins);

// Pattern subsumption: every term `specific` matches is also matched by
// `general` (specific's variables are treated as opaque constants; binding
// consistency is respected). Exact for the supported pattern language.
bool Subsumes(const term::TermRef& general, const term::TermRef& specific);

// Fixed arities of the LERA operators and scalar expression functors a
// query term can contain (SEARCH -> 3, FIX -> 2, ...). Variadic structural
// functors (LIST, SET, BAG, TUPLE) are deliberately absent. Returns nullopt
// for unknown functors.
std::optional<size_t> KnownConstructorArity(const std::string& functor);

// The functors query terms can be built from: LERA operators plus the
// scalar expression functors (AND, EQ, ATTR, ...). Used as the base of the
// dead-rule "producible functor" universe.
const std::vector<std::string>& QueryConstructors();

// Strongly connected components of a digraph over nodes 0..n-1 (Tarjan).
// Returned in reverse topological order; single nodes form an SCC only
// with themselves (check self-loops separately).
std::vector<std::vector<int>> StronglyConnectedComponents(
    const std::vector<std::vector<int>>& adjacency);

}  // namespace eds::lint

#endif  // EDS_LINT_ANALYSIS_H_
