#include "lint/diagnostic.h"

#include <algorithm>

namespace eds::lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (loc.known()) {
    out += loc.ToString();
    out += ": ";
  }
  out += SeverityName(severity);
  out += " [";
  out += id;
  out += "]";
  if (!block.empty()) out += " (block '" + block + "')";
  if (!rule.empty()) out += " rule '" + rule + "':";
  out += " ";
  out += message;
  return out;
}

void LintReport::Add(Severity severity, std::string id,
                     const rewrite::Rule* rule, std::string block,
                     std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.id = std::move(id);
  if (rule != nullptr) {
    d.rule = rule->name;
    d.loc = rule->loc;
  }
  d.block = std::move(block);
  d.message = std::move(message);
  diagnostics_.push_back(std::move(d));
}

size_t LintReport::count(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<Diagnostic> LintReport::WithId(const std::string& id) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics_) {
    if (d.id == id) out.push_back(d);
  }
  return out;
}

void LintReport::SortByLocation() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.known() != b.loc.known()) return a.loc.known();
                     return a.loc.offset < b.loc.offset;
                   });
}

std::string LintReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace eds::lint
