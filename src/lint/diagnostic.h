#ifndef EDS_LINT_DIAGNOSTIC_H_
#define EDS_LINT_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "rewrite/rule.h"

namespace eds::lint {

enum class Severity {
  kNote,     // informational
  kWarning,  // suspicious but possibly intended; eds_lint still exits 0
  kError,    // the program is broken or a rule can never work as written
};

const char* SeverityName(Severity s);  // "note" / "warning" / "error"

// Stable lint identifiers. Every diagnostic carries one so tests, golden
// files and suppression tooling can key on it; docs/rule_lint.md documents
// each id with a minimal triggering example.
inline constexpr const char* kLintParseError = "EDS-L000";
inline constexpr const char* kLintInvalidRule = "EDS-L001";
inline constexpr const char* kLintDuplicateName = "EDS-L002";
inline constexpr const char* kLintUnknownReference = "EDS-L003";
inline constexpr const char* kLintDivergence = "EDS-L010";
inline constexpr const char* kLintUnreferencedRule = "EDS-L011";
inline constexpr const char* kLintUnreachableFunctor = "EDS-L012";
inline constexpr const char* kLintImpossiblePattern = "EDS-L013";
inline constexpr const char* kLintShadowedRule = "EDS-L020";
inline constexpr const char* kLintUnsatisfiableConstraint = "EDS-L030";
inline constexpr const char* kLintUnusedMethodOutput = "EDS-L031";
inline constexpr const char* kLintEmptyCollectionVar = "EDS-L032";
inline constexpr const char* kLintMalformedConstructor = "EDS-L033";

// One finding of the static analyzer.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string id;        // one of the EDS-Lxxx constants
  std::string rule;      // offending rule name ("" for unit-level findings)
  std::string block;     // enclosing block name ("" when not block-scoped)
  rewrite::SourceLoc loc;
  std::string message;

  // "line 4:1: warning [EDS-L010] (block 'merge') rule 'x': ...".
  std::string ToString() const;
};

// An append-only collection of diagnostics with summary accessors. Shared
// by the compiler's opt-in lint hook, the standalone linter and eds_lint.
class LintReport {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void Add(Severity severity, std::string id, const rewrite::Rule* rule,
           std::string block, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t count(Severity s) const;
  size_t error_count() const { return count(Severity::kError); }
  size_t warning_count() const { return count(Severity::kWarning); }
  bool has_errors() const { return error_count() > 0; }

  // Diagnostics with the given lint id, in insertion order.
  std::vector<Diagnostic> WithId(const std::string& id) const;

  // Stable sort by source offset (unknown locations last), preserving
  // insertion order within a location.
  void SortByLocation();

  // One line per diagnostic, newline-terminated; "" when empty.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace eds::lint

#endif  // EDS_LINT_DIAGNOSTIC_H_
