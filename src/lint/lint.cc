#include "lint/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/strings.h"
#include "lint/analysis.h"
#include "value/collection_lib.h"

namespace eds::lint {

namespace {

using rewrite::Rule;
using term::TermRef;

// A block as the analysis passes see it: a name, a budget and the rules
// that run in it, in order. Built leniently (unknown names skipped) so the
// linter keeps going on programs the compiler would reject.
struct BlockView {
  std::string name;
  int64_t limit = rewrite::kSaturate;
  std::vector<const Rule*> rules;
};

std::vector<BlockView> ViewsFromUnit(const ruledsl::CompiledUnit& unit,
                                     const std::set<const Rule*>& excluded) {
  std::vector<BlockView> views;
  if (unit.blocks.empty()) {
    BlockView all;
    all.name = "default";
    all.limit = rewrite::kSaturate;
    for (const Rule& r : unit.rules) {
      if (excluded.count(&r) == 0) all.rules.push_back(&r);
    }
    views.push_back(std::move(all));
    return views;
  }
  std::map<std::string, const Rule*> by_name;
  for (const Rule& r : unit.rules) {
    if (excluded.count(&r) == 0) by_name.emplace(ToUpperAscii(r.name), &r);
  }
  for (const ruledsl::BlockDecl& decl : unit.blocks) {
    BlockView view;
    view.name = decl.name;
    view.limit = decl.limit;
    for (const std::string& rule_name : decl.rule_names) {
      auto it = by_name.find(ToUpperAscii(rule_name));
      if (it != by_name.end()) view.rules.push_back(it->second);
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::vector<BlockView> ViewsFromProgram(const rewrite::RewriteProgram& program) {
  std::vector<BlockView> views;
  for (const rewrite::RuleBlock& block : program.blocks) {
    BlockView view;
    view.name = block.name;
    view.limit = block.limit;
    for (const Rule& r : block.rules) view.rules.push_back(&r);
    views.push_back(std::move(view));
  }
  return views;
}

// Rules deduplicated by (upper-cased) name — the same rule may appear in
// several blocks; per-rule passes should fire once.
std::map<std::string, const Rule*> UniqueRules(
    const std::vector<BlockView>& views) {
  std::map<std::string, const Rule*> out;
  for (const BlockView& view : views) {
    for (const Rule* r : view.rules) out.emplace(ToUpperAscii(r->name), r);
  }
  return out;
}

std::string JoinNames(const std::vector<const Rule*>& rules) {
  std::string out;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ", ";
    out += "'" + rules[i]->name + "'";
  }
  return out;
}

// ---- pass 1: divergence -----------------------------------------------

// Rule-interaction graph per saturation block: edge i -> j when rule i's
// instantiated right term may contain a subterm rule j's left term matches.
// Any strongly connected knot (including self-loops) with no provably
// size-decreasing member can ping-pong forever under an INF limit.
void CheckDivergence(const std::vector<BlockView>& views,
                     const rewrite::BuiltinRegistry& builtins,
                     LintReport* report) {
  // One memo across every block: verdicts depend only on the node pair and
  // the (fixed) registry, and hash-consing shares subtrees across rules, so
  // the n² interaction loops below mostly replay already-decided pairs.
  UnifyMemo memo;
  for (const BlockView& block : views) {
    if (block.limit != rewrite::kSaturate || block.rules.empty()) continue;
    const size_t n = block.rules.size();
    std::vector<std::vector<int>> adj(n);
    std::vector<bool> self_loop(n, false);
    for (size_t i = 0; i < n; ++i) {
      if (block.rules[i]->rhs == nullptr) continue;
      for (size_t j = 0; j < n; ++j) {
        if (block.rules[j]->lhs == nullptr) continue;
        if (ProducesMatchFor(block.rules[i]->rhs, block.rules[j]->lhs,
                             builtins, &memo)) {
          adj[i].push_back(static_cast<int>(j));
          if (i == j) self_loop[i] = true;
        }
      }
    }
    for (const std::vector<int>& scc : StronglyConnectedComponents(adj)) {
      if (scc.size() < 2 && !self_loop[static_cast<size_t>(scc[0])]) continue;
      std::vector<const Rule*> cycle;
      for (int idx : scc) cycle.push_back(block.rules[static_cast<size_t>(idx)]);
      if (std::any_of(cycle.begin(), cycle.end(), [&](const Rule* r) {
            return IsSizeDecreasing(*r, builtins);
          })) {
        continue;
      }
      const bool all_guarded =
          std::all_of(cycle.begin(), cycle.end(), [](const Rule* r) {
            return !r->constraints.empty() || !r->methods.empty();
          });
      std::string message;
      if (cycle.size() == 1) {
        message = "may rewrite its own output forever under saturation: the "
                  "right term can again match the left term and no "
                  "application provably shrinks the query";
      } else {
        message = "possible divergence under saturation: rules " +
                  JoinNames(cycle) +
                  " can each rewrite into a term the next one matches, and "
                  "none provably shrinks the query";
      }
      if (all_guarded) {
        message += "; every rule in the cycle is guarded by constraints or "
                   "methods, which may still bound it";
      }
      message += ". Consider a finite block limit.";
      report->Add(Severity::kWarning, kLintDivergence, cycle.front(),
                  block.name, std::move(message));
    }
  }
}

// ---- pass 2: dead / unreachable rules ---------------------------------

void CollectFunctors(const TermRef& t, std::set<std::string>* out) {
  if (!t->is_apply()) return;
  out->insert(t->functor());
  for (const TermRef& a : t->args()) CollectFunctors(a, out);
}

bool IsFunctorVar(const TermRef& t) {
  return t->is_apply() && !t->functor().empty() && t->functor().front() == '?';
}

void CheckDeadRules(const std::vector<BlockView>& views,
                    const LintOptions& opts, LintReport* report) {
  // The producible-functor universe: anything a LERA query term can contain
  // (operators, scalar functions) plus anything some rule's right term
  // builds, plus caller-declared custom operators.
  std::set<std::string> producible;
  for (const std::string& f : QueryConstructors()) producible.insert(f);
  for (const std::string& f : value::FunctionLibrary::Default().Names()) {
    producible.insert(ToUpperAscii(f));
  }
  if (opts.catalog != nullptr) {
    for (const std::string& f : opts.catalog->functions().Names()) {
      producible.insert(ToUpperAscii(f));
    }
  }
  for (const std::string& f : opts.extra_constructors) {
    producible.insert(ToUpperAscii(f));
  }
  for (const BlockView& view : views) {
    for (const Rule* r : view.rules) {
      if (r->rhs != nullptr) CollectFunctors(r->rhs, &producible);
    }
  }

  std::set<std::string> reported;
  for (const BlockView& view : views) {
    for (const Rule* r : view.rules) {
      if (r->lhs == nullptr || !r->lhs->is_apply() || IsFunctorVar(r->lhs)) {
        continue;
      }
      const std::string& root = r->lhs->functor();
      if (producible.count(root) > 0) continue;
      if (!reported.insert(ToUpperAscii(r->name)).second) continue;
      report->Add(Severity::kWarning, kLintUnreachableFunctor, r, view.name,
                  "left term's root functor '" + root +
                      "' is never produced: no LERA constructor, scalar "
                      "function, or rule right term builds it, so the rule "
                      "can never fire");
    }
  }
}

// ---- pattern arity checks (EDS-L013 / L032 / L033) --------------------

void CheckPatternArity(const Rule& rule, const TermRef& t, bool is_lhs,
                       const LintOptions& opts, LintReport* report) {
  if (t == nullptr || !t->is_apply()) return;
  for (const TermRef& a : t->args()) {
    CheckPatternArity(rule, a, is_lhs, opts, report);
  }
  if (IsFunctorVar(t)) return;
  std::optional<size_t> arity = KnownConstructorArity(t->functor());
  if (!arity.has_value()) return;
  size_t fixed = 0, coll = 0;
  for (const TermRef& a : t->args()) {
    a->is_collection_variable() ? ++coll : ++fixed;
  }
  if (is_lhs) {
    if ((coll == 0 && fixed != *arity) || fixed > *arity) {
      if (opts.check_dead_rules) {
        report->Add(Severity::kError, kLintImpossiblePattern, &rule, "",
                    "pattern '" + t->ToString() + "' can never match: '" +
                        t->functor() + "' always has " +
                        std::to_string(*arity) + " argument(s)");
      }
    } else if (coll > 0 && fixed == *arity) {
      if (opts.check_hygiene) {
        report->Add(Severity::kWarning, kLintEmptyCollectionVar, &rule, "",
                    "collection variable(s) in pattern '" + t->ToString() +
                        "' can only match the empty sequence: the " +
                        std::to_string(*arity) + " fixed argument(s) of '" +
                        t->functor() + "' are already taken");
      }
    }
  } else if (coll == 0 && fixed != *arity && opts.check_hygiene) {
    report->Add(Severity::kWarning, kLintMalformedConstructor, &rule, "",
                "right term builds '" + t->functor() + "' with " +
                    std::to_string(fixed) + " argument(s); query terms use " +
                    std::to_string(*arity));
  }
}

// ---- pass 3: shadowing -------------------------------------------------

void CheckShadowing(const std::vector<BlockView>& views, LintReport* report) {
  for (const BlockView& view : views) {
    for (size_t j = 1; j < view.rules.size(); ++j) {
      const Rule* b = view.rules[j];
      if (b->lhs == nullptr) continue;
      for (size_t i = 0; i < j; ++i) {
        const Rule* a = view.rules[i];
        if (a->lhs == nullptr) continue;
        // Only an unconditional rule is guaranteed to fire first; a guarded
        // one can decline the match and let later rules try.
        if (!a->constraints.empty() || !a->methods.empty()) continue;
        if (!Subsumes(a->lhs, b->lhs)) continue;
        std::string message =
            ToUpperAscii(a->name) == ToUpperAscii(b->name)
                ? "appears more than once in block '" + view.name +
                      "'; the later occurrence never fires"
                : "never fires: " + a->Describe() + " earlier in block '" +
                      view.name +
                      "' matches every term this rule matches and rewrites "
                      "it unconditionally first";
        report->Add(Severity::kWarning, kLintShadowedRule, b, view.name,
                    std::move(message));
        break;  // one shadowing report per rule is enough
      }
    }
  }
}

// ---- pass 4: constraint / method hygiene ------------------------------

const std::set<std::string>& DisjointCollectionKinds() {
  static const std::set<std::string>* kKinds =
      new std::set<std::string>{"SET", "BAG", "LIST", "ARRAY"};
  return *kKinds;
}

bool IsPseudoTypeName(const std::string& upper) {
  return DisjointCollectionKinds().count(upper) > 0 ||
         upper == "COLLECTION" || upper == "CONSTANT";
}

bool OnSupertypeChain(types::TypeRef t, const types::TypeRef& ancestor) {
  while (t != nullptr) {
    if (t == ancestor) return true;
    t = t->supertype();
  }
  return false;
}

bool TypesCompatible(const types::TypeRef& a, const types::TypeRef& b) {
  if (a == nullptr || b == nullptr) return true;
  if (a->kind() == types::TypeKind::kAny || b->kind() == types::TypeKind::kAny)
    return true;
  if (OnSupertypeChain(a, b) || OnSupertypeChain(b, a)) return true;
  auto numeric_pair = [](const types::TypeRef& x, const types::TypeRef& y) {
    return x->kind() == types::TypeKind::kNumeric &&
           (y->kind() == types::TypeKind::kInt ||
            y->kind() == types::TypeKind::kReal);
  };
  return numeric_pair(a, b) || numeric_pair(b, a);
}

void CheckConstraints(const Rule& rule, const LintOptions& opts,
                      LintReport* report) {
  // ISA type names asserted per subject term (key: printed form), in
  // first-seen order so diagnostics are deterministic.
  std::map<std::string, std::vector<std::string>> isa_by_subject;
  for (const TermRef& c : rule.constraints) {
    for (const TermRef& conj : term::Conjuncts(c)) {
      if (conj->is_constant() &&
          conj->constant().kind() == value::ValueKind::kBool &&
          !conj->constant().AsBool()) {
        report->Add(Severity::kError, kLintUnsatisfiableConstraint, &rule, "",
                    "constraint is literally FALSE; the rule can never fire");
        continue;
      }
      if (!conj->IsApply("ISA", 2)) continue;
      const TermRef& ty = conj->arg(1);
      std::string name;
      if (ty->is_variable()) {
        name = ty->var_name();
      } else if (ty->is_constant() &&
                 ty->constant().kind() == value::ValueKind::kString) {
        name = ty->constant().AsString();
      } else {
        report->Add(Severity::kError, kLintUnsatisfiableConstraint, &rule, "",
                    "ISA's second argument must name a type, got '" +
                        ty->ToString() + "'");
        continue;
      }
      const std::string upper = ToUpperAscii(name);
      isa_by_subject[conj->arg(0)->ToString()].push_back(upper);
      if (opts.catalog != nullptr && !IsPseudoTypeName(upper) &&
          !opts.catalog->types().Contains(name)) {
        report->Add(Severity::kError, kLintUnsatisfiableConstraint, &rule, "",
                    "ISA(" + conj->arg(0)->ToString() + ", '" + name +
                        "'): type '" + name +
                        "' is not known to the catalog, so the constraint "
                        "can never hold");
      }
    }
  }
  for (const auto& [subject, names] : isa_by_subject) {
    // Distinct collection kinds are pairwise disjoint: a value has one kind.
    std::set<std::string> kinds;
    for (const std::string& n : names) {
      if (DisjointCollectionKinds().count(n) > 0) kinds.insert(n);
    }
    if (kinds.size() > 1) {
      std::string list;
      for (const std::string& k : kinds) {
        if (!list.empty()) list += ", ";
        list += k;
      }
      report->Add(Severity::kError, kLintUnsatisfiableConstraint, &rule, "",
                  "ISA constraints require '" + subject +
                      "' to be of disjoint collection kinds {" + list +
                      "} simultaneously; the rule can never fire");
      continue;
    }
    if (opts.catalog == nullptr) continue;
    // Concrete catalog types: unrelated pairs can never both hold.
    std::vector<std::pair<std::string, types::TypeRef>> resolved;
    for (const std::string& n : names) {
      if (IsPseudoTypeName(n)) continue;
      Result<types::TypeRef> t = opts.catalog->types().Find(n);
      if (t.ok()) resolved.emplace_back(n, *t);
    }
    for (size_t i = 0; i < resolved.size(); ++i) {
      for (size_t k = i + 1; k < resolved.size(); ++k) {
        if (resolved[i].second == resolved[k].second) continue;
        if (TypesCompatible(resolved[i].second, resolved[k].second)) continue;
        report->Add(Severity::kError, kLintUnsatisfiableConstraint, &rule, "",
                    "ISA constraints require '" + subject +
                        "' to be both '" + resolved[i].first + "' and '" +
                        resolved[k].first +
                        "', which are incompatible catalog types");
      }
    }
  }
}

void CheckMethodOutputs(const Rule& rule, LintReport* report) {
  std::vector<std::string> bound, bound_coll;
  if (rule.lhs != nullptr) {
    term::CollectVariables(rule.lhs, &bound, &bound_coll);
  }
  std::map<std::string, size_t> rhs_vars, rhs_coll;
  if (rule.rhs != nullptr) {
    CountVarOccurrences(rule.rhs, &rhs_vars, &rhs_coll);
  }
  auto contains = [](const std::vector<std::string>& xs,
                     const std::string& x) {
    return std::find(xs.begin(), xs.end(), x) != xs.end();
  };
  for (size_t i = 0; i < rule.methods.size(); ++i) {
    std::vector<std::string> vars, coll_vars;
    for (const TermRef& a : rule.methods[i].args) {
      term::CollectVariables(a, &vars, &coll_vars);
    }
    auto check_output = [&](const std::string& v, bool is_coll) {
      // Used if the right term reads it, or a later method call takes it
      // as an input.
      if (is_coll ? rhs_coll.count(v) > 0 : rhs_vars.count(v) > 0) return;
      for (size_t j = i + 1; j < rule.methods.size(); ++j) {
        std::vector<std::string> lv, lcv;
        for (const TermRef& a : rule.methods[j].args) {
          term::CollectVariables(a, &lv, &lcv);
        }
        if (contains(is_coll ? lcv : lv, v)) return;
      }
      report->Add(Severity::kWarning, kLintUnusedMethodOutput, &rule, "",
                  "method '" + rule.methods[i].name + "' binds '" + v +
                      (is_coll ? "*" : "") +
                      "' but neither the right term nor a later method "
                      "uses it");
    };
    for (const std::string& v : vars) {
      if (!contains(bound, v)) {
        check_output(v, /*is_coll=*/false);
        bound.push_back(v);
      }
    }
    for (const std::string& v : coll_vars) {
      if (!contains(bound_coll, v)) {
        check_output(v, /*is_coll=*/true);
        bound_coll.push_back(v);
      }
    }
  }
}

// ---- shared driver ----------------------------------------------------

void AnalyzeCore(const std::vector<BlockView>& views,
                 const std::map<std::string, const Rule*>& hygiene_rules,
                 const rewrite::BuiltinRegistry& builtins,
                 const LintOptions& opts, LintReport* report) {
  if (opts.check_divergence) CheckDivergence(views, builtins, report);
  if (opts.check_dead_rules) CheckDeadRules(views, opts, report);
  if (opts.check_shadowing) CheckShadowing(views, report);
  for (const auto& [name, rule] : hygiene_rules) {
    (void)name;
    if (opts.check_dead_rules || opts.check_hygiene) {
      CheckPatternArity(*rule, rule->lhs, /*is_lhs=*/true, opts, report);
      CheckPatternArity(*rule, rule->rhs, /*is_lhs=*/false, opts, report);
    }
    if (opts.check_hygiene) {
      CheckConstraints(*rule, opts, report);
      CheckMethodOutputs(*rule, report);
    }
  }
}

}  // namespace

void ReportUnreferencedRules(const ruledsl::CompiledUnit& unit,
                             LintReport* report) {
  if (unit.blocks.empty()) return;  // implicit default block runs them all
  std::set<std::string> referenced;
  for (const ruledsl::BlockDecl& decl : unit.blocks) {
    for (const std::string& n : decl.rule_names) {
      referenced.insert(ToUpperAscii(n));
    }
  }
  for (const Rule& r : unit.rules) {
    if (referenced.count(ToUpperAscii(r.name)) > 0) continue;
    report->Add(Severity::kWarning, kLintUnreferencedRule, &r, "",
                "no declared block references this rule, so the compiler "
                "drops it silently; add it to a block or delete it");
  }
}

void AnalyzeUnit(const ruledsl::CompiledUnit& unit,
                 const rewrite::BuiltinRegistry& builtins,
                 const LintOptions& opts, LintReport* report) {
  std::vector<BlockView> views = ViewsFromUnit(unit, /*excluded=*/{});
  // Hygiene covers every rule in the unit, referenced or not: unreferenced
  // rules are usually destined for another program and deserve checking.
  std::map<std::string, const Rule*> hygiene;
  for (const Rule& r : unit.rules) hygiene.emplace(ToUpperAscii(r.name), &r);
  AnalyzeCore(views, hygiene, builtins, opts, report);
}

void AnalyzeProgram(const rewrite::RewriteProgram& program,
                    const rewrite::BuiltinRegistry& builtins,
                    const LintOptions& opts, LintReport* report) {
  std::vector<BlockView> views = ViewsFromProgram(program);
  AnalyzeCore(views, UniqueRules(views), builtins, opts, report);
}

LintReport LintUnit(const ruledsl::CompiledUnit& unit,
                    const rewrite::BuiltinRegistry& builtins,
                    const LintOptions& opts) {
  LintReport report;
  std::set<const Rule*> invalid;
  std::set<std::string> seen;
  for (const Rule& r : unit.rules) {
    Status status = rewrite::ValidateRule(r, builtins);
    if (!status.ok()) {
      invalid.insert(&r);
      // ValidateRule prefixes its message with the rule description; the
      // diagnostic already carries rule + location, so strip it.
      std::string message = status.message();
      const std::string prefix = r.Describe() + ": ";
      if (message.rfind(prefix, 0) == 0) message = message.substr(prefix.size());
      report.Add(Severity::kError, kLintInvalidRule, &r, "",
                 std::move(message));
    }
    if (!seen.insert(ToUpperAscii(r.name)).second) {
      invalid.insert(&r);
      report.Add(Severity::kError, kLintDuplicateName, &r, "",
                 "duplicate rule name; an earlier rule already uses it");
    }
  }

  std::set<std::string> rule_names = std::move(seen);
  std::set<std::string> block_names;
  for (const ruledsl::BlockDecl& decl : unit.blocks) {
    if (!block_names.insert(ToUpperAscii(decl.name)).second) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.id = kLintDuplicateName;
      d.block = decl.name;
      d.loc = decl.loc;
      d.message = "duplicate block name";
      report.Add(std::move(d));
    }
    for (const std::string& rn : decl.rule_names) {
      if (rule_names.count(ToUpperAscii(rn)) > 0) continue;
      Diagnostic d;
      d.severity = Severity::kError;
      d.id = kLintUnknownReference;
      d.block = decl.name;
      d.loc = decl.loc;
      d.message = "references unknown rule '" + rn + "'";
      report.Add(std::move(d));
    }
  }
  if (unit.seq.has_value()) {
    if (unit.blocks.empty()) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.id = kLintUnknownReference;
      d.loc = unit.seq->loc;
      d.message = "seq declared without any blocks";
      report.Add(std::move(d));
    }
    for (const std::string& bn : unit.seq->block_names) {
      if (block_names.count(ToUpperAscii(bn)) > 0) continue;
      Diagnostic d;
      d.severity = Severity::kError;
      d.id = kLintUnknownReference;
      d.loc = unit.seq->loc;
      d.message = "seq references unknown block '" + bn + "'";
      report.Add(std::move(d));
    }
  }

  ReportUnreferencedRules(unit, &report);

  std::vector<BlockView> views = ViewsFromUnit(unit, invalid);
  std::map<std::string, const Rule*> hygiene;
  for (const Rule& r : unit.rules) {
    if (invalid.count(&r) == 0) hygiene.emplace(ToUpperAscii(r.name), &r);
  }
  AnalyzeCore(views, hygiene, builtins, opts, &report);

  report.SortByLocation();
  return report;
}

LintReport LintSource(std::string_view text,
                      const rewrite::BuiltinRegistry& builtins,
                      const LintOptions& opts) {
  Result<ruledsl::CompiledUnit> unit = ruledsl::ParseRuleSource(text);
  if (!unit.ok()) {
    LintReport report;
    Diagnostic d;
    d.severity = Severity::kError;
    d.id = kLintParseError;
    d.message = unit.status().message();
    // Parser errors carry "at offset N: ..." — recover a line:column.
    const std::string& m = unit.status().message();
    const std::string prefix = "at offset ";
    if (m.rfind(prefix, 0) == 0) {
      size_t offset = 0;
      size_t i = prefix.size();
      while (i < m.size() && m[i] >= '0' && m[i] <= '9') {
        offset = offset * 10 + static_cast<size_t>(m[i] - '0');
        ++i;
      }
      d.loc = ruledsl::LocateOffset(text, offset);
    }
    report.Add(std::move(d));
    return report;
  }
  return LintUnit(*unit, builtins, opts);
}

}  // namespace eds::lint
